//! Typed campaign run options: the one place `SATIOT_*` knobs are read.
//!
//! Before this module, every binary re-read its own slice of the
//! environment (`SATIOT_THREADS` in the pool, `SATIOT_EPHEMERIS` in the
//! orbit crate, `SATIOT_METRICS` in obs, `SATIOT_CHAOS_SEED` in sim,
//! `SATIOT_SCALE` in bench), which made a campaign's effective
//! configuration impossible to see in one place and impossible to set
//! programmatically without mutating the process environment.
//! [`RunOptions`] replaces that: campaigns take `&RunOptions`, the
//! environment is parsed exactly once by [`RunOptions::from_env`], and
//! [`RunOptions::apply`] installs the process-wide latches (pool worker
//! count, ephemeris mode, visibility scan mode, metrics flag, chaos
//! seed) for code that sits below the campaign API.
//!
//! ```
//! use satiot_core::options::{BatchMode, RunOptions};
//! use satiot_orbit::ephemeris::EphemerisMode;
//!
//! // Machine defaults; no environment involved.
//! let opts = RunOptions::default();
//! assert_eq!(opts.batch, BatchMode::On);
//!
//! // Builder-style overrides on top of the environment.
//! let opts = RunOptions::from_env()
//!     .with_threads(Some(2))
//!     .with_ephemeris(EphemerisMode::Off)
//!     .with_batch(BatchMode::Off);
//! assert_eq!(opts.threads, Some(2));
//! ```

use crate::sink::SinkMode;
use satiot_orbit::cull::{self, CullingMode};
use satiot_orbit::ephemeris::{self, EphemerisMode};
use satiot_orbit::visibility::{self, VisibilityMode};
use satiot_sim::{chaos, pool};

/// Whether the campaign simulate phase runs the batched SoA channel
/// kernels or the element-at-a-time scalar path.
///
/// Both paths are bit-identical (the A/B invariant `determinism_smoke`
/// pins); [`BatchMode::Off`] exists for baselining and bisection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Gather each pass into SoA arenas and run the chunked kernels
    /// (the default).
    #[default]
    On,
    /// Evaluate the channel chain one beacon at a time (the legacy hot
    /// path; `SATIOT_BATCH=0`).
    Off,
}

/// Campaign scale: truncated smoke dimensions or the paper's full ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Truncated campaigns for smoke runs (CI, benches);
    /// `SATIOT_SCALE=quick`.
    Quick,
    /// The paper's full campaign dimensions (the default).
    #[default]
    Full,
}

impl Scale {
    /// Read the scale from `SATIOT_SCALE` (default: full).
    pub fn from_env() -> Scale {
        RunOptions::from_env().scale
    }

    /// Per-site cap on passive campaign days.
    pub fn passive_days(self) -> f64 {
        match self {
            Scale::Quick => 5.0,
            Scale::Full => f64::INFINITY,
        }
    }

    /// Active campaign length, days (paper: one month).
    pub fn active_days(self) -> f64 {
        match self {
            Scale::Quick => 5.0,
            Scale::Full => 30.0,
        }
    }

    /// Days used for the theoretical-availability analysis (Fig 3a).
    pub fn availability_days(self) -> u32 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 14,
        }
    }
}

/// Typed options for one campaign run.
///
/// `Default` is the machine default (auto thread count, grids on,
/// batching on, metrics off) with **no** environment involvement —
/// hermetic for tests. [`from_env`](Self::from_env) layers the
/// `SATIOT_*` knobs on top; the `with_*` builders override either.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Worker threads for the sweep pool phases; `None` uses the
    /// machine's available parallelism (`SATIOT_THREADS`).
    pub threads: Option<usize>,
    /// Pass-prediction sampling backend (`SATIOT_EPHEMERIS`).
    pub ephemeris: EphemerisMode,
    /// Pass-prediction coarse-scan strategy (`SATIOT_VISIBILITY`:
    /// `0`/`off` = legacy adaptive scan, `scalar` = element-at-a-time
    /// margin sweep, anything else = chunked vector kernels).
    pub visibility: VisibilityMode,
    /// Spatial pre-culling of (site, satellite) pairs before pass
    /// prediction (`SATIOT_CULLING`: `0`/`off` = predict every pair,
    /// bit-identical legacy; anything else = conservative cull, the
    /// default).
    pub culling: CullingMode,
    /// Simulate-phase channel evaluation strategy (`SATIOT_BATCH`).
    pub batch: BatchMode,
    /// Root seed for the chaos perturbation engine
    /// (`SATIOT_CHAOS_SEED`).
    pub chaos_seed: u64,
    /// Whether the `satiot_obs` metrics registry records
    /// (`SATIOT_METRICS`).
    pub metrics: bool,
    /// Campaign scale for the bench/reproduction binaries
    /// (`SATIOT_SCALE`).
    pub scale: Scale,
    /// Where the simulate phase routes decoded beacon traces
    /// (`SATIOT_SINK`: `full` | `aggregate` | `null` | `csv:<path>` |
    /// `jsonl:<path>`).
    pub sink: SinkMode,
    /// Sweep-server spill directory for checkpoint/resume
    /// (`SATIOT_SWEEP_DIR`); `None` disables checkpointing.
    pub sweep_dir: Option<&'static str>,
    /// Sweep-server shard assignment as `(index, count)`
    /// (`SATIOT_SWEEP_SHARD=i/n`, `i < n`); `None` runs every job.
    pub sweep_shard: Option<(usize, usize)>,
    /// Combined payload budget for the process-wide pass cache and
    /// ephemeris grid store, MiB (`SATIOT_SWEEP_CACHE_MB`; `0` or unset
    /// = unlimited, preserving exactly-once memoisation). Installed by
    /// [`apply`](Self::apply) through
    /// [`crate::sweep::set_cache_budget_bytes`]; the sweep server
    /// enforces it between jobs.
    pub sweep_cache_mb: Option<u64>,
    /// Path to a `.scenario.json` file (`SATIOT_SCENARIO`); `None` runs
    /// each binary's compiled-in scenario. Campaign binaries load it
    /// through `ScenarioSpec::from_file` and build their configs from
    /// the resolved scenario.
    pub scenario: Option<&'static str>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: None,
            ephemeris: EphemerisMode::On,
            visibility: VisibilityMode::On,
            culling: CullingMode::On,
            batch: BatchMode::On,
            chaos_seed: chaos::DEFAULT_SEED,
            metrics: false,
            scale: Scale::Full,
            sink: SinkMode::Full,
            sweep_dir: None,
            sweep_shard: None,
            sweep_cache_mb: None,
            scenario: None,
        }
    }
}

impl RunOptions {
    /// Options resolved from the `SATIOT_*` environment variables —
    /// the **only** place in the workspace that reads them.
    ///
    /// Malformed values fall back to the documented defaults (see
    /// [`from_lookup_with_warnings`](Self::from_lookup_with_warnings))
    /// and each rejection is reported on stderr, so a typo'd knob is
    /// visible instead of silently ignored.
    pub fn from_env() -> RunOptions {
        let (opts, warnings) = Self::from_lookup_with_warnings(|key| std::env::var(key).ok());
        for w in &warnings {
            eprintln!("satiot: warning: {w}");
        }
        opts
    }

    /// [`from_env`](Self::from_env) with an injectable variable source
    /// (tests exercise the parsing without touching the process
    /// environment). Discards rejection warnings; use
    /// [`from_lookup_with_warnings`](Self::from_lookup_with_warnings)
    /// to observe them.
    pub fn from_lookup<F: Fn(&str) -> Option<String>>(lookup: F) -> RunOptions {
        Self::from_lookup_with_warnings(lookup).0
    }

    /// Parse every `SATIOT_*` knob from `lookup`, collecting one
    /// human-readable warning per *rejected* value. Rejection is never
    /// silent and never fatal: each malformed value falls back to its
    /// documented default —
    ///
    /// * `SATIOT_THREADS`: unparsable → auto (`None`); `0` is the
    ///   *documented* spelling of auto, not a rejection.
    /// * `SATIOT_EPHEMERIS` / `SATIOT_VISIBILITY` / `SATIOT_CULLING` /
    ///   `SATIOT_BATCH`: unknown word → the `On` default.
    /// * `SATIOT_CHAOS_SEED`: unparsable → the built-in chaos seed.
    /// * `SATIOT_SCALE`: unknown word → `full`.
    /// * `SATIOT_SINK`: unknown mode or a pathless `csv:`/`jsonl:` →
    ///   the full-trace sink.
    /// * `SATIOT_SWEEP_DIR`: empty → checkpointing off.
    /// * `SATIOT_SWEEP_SHARD`: anything but `i/n` with `i < n` → run
    ///   every job.
    /// * `SATIOT_SWEEP_CACHE_MB`: unparsable → unlimited; `0` is the
    ///   documented spelling of unlimited, not a rejection.
    /// * `SATIOT_SCENARIO`: empty → the compiled-in scenario. (Whether
    ///   the file exists and parses is decided by the binary that loads
    ///   it, with a typed `ScenarioError`.)
    pub fn from_lookup_with_warnings<F: Fn(&str) -> Option<String>>(
        lookup: F,
    ) -> (RunOptions, Vec<String>) {
        let mut warnings: Vec<String> = Vec::new();
        let mut reject = |key: &str, value: &str, fallback: &str| {
            warnings.push(format!("{key}={value:?} is invalid; using {fallback}"));
        };
        let threads = lookup("SATIOT_THREADS").and_then(|v| match v.trim().parse::<usize>() {
            Ok(0) => None, // Documented: 0 = auto.
            Ok(n) => Some(n),
            Err(_) => {
                reject("SATIOT_THREADS", &v, "the machine's parallelism");
                None
            }
        });
        let ephemeris = match lookup("SATIOT_EPHEMERIS").as_deref() {
            Some("0") | Some("off") | Some("false") => EphemerisMode::Off,
            Some("validate") => EphemerisMode::Validate,
            Some("1") | Some("on") | Some("true") | Some("") | None => EphemerisMode::On,
            Some(v) => {
                reject("SATIOT_EPHEMERIS", v, "the grid backend (on)");
                EphemerisMode::On
            }
        };
        let visibility = match lookup("SATIOT_VISIBILITY").as_deref() {
            Some("0") | Some("off") | Some("false") => VisibilityMode::Off,
            Some("scalar") => VisibilityMode::Scalar,
            Some("1") | Some("on") | Some("true") | Some("") | None => VisibilityMode::On,
            Some(v) => {
                reject("SATIOT_VISIBILITY", v, "the vector kernels (on)");
                VisibilityMode::On
            }
        };
        let culling = match lookup("SATIOT_CULLING").as_deref() {
            Some("0") | Some("off") | Some("false") => CullingMode::Off,
            Some("1") | Some("on") | Some("true") | Some("") | None => CullingMode::On,
            Some(v) => {
                reject("SATIOT_CULLING", v, "the spatial pre-cull (on)");
                CullingMode::On
            }
        };
        let batch = match lookup("SATIOT_BATCH").as_deref() {
            Some("0") | Some("off") | Some("false") => BatchMode::Off,
            Some("1") | Some("on") | Some("true") | Some("") | None => BatchMode::On,
            Some(v) => {
                reject("SATIOT_BATCH", v, "the SoA kernels (on)");
                BatchMode::On
            }
        };
        let chaos_seed = lookup("SATIOT_CHAOS_SEED")
            .and_then(|v| match v.trim().parse::<u64>() {
                Ok(s) => Some(s),
                Err(_) => {
                    reject("SATIOT_CHAOS_SEED", &v, "the built-in seed");
                    None
                }
            })
            .unwrap_or(chaos::DEFAULT_SEED);
        let metrics = lookup("SATIOT_METRICS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let scale = match lookup("SATIOT_SCALE").as_deref() {
            Some("quick") => Scale::Quick,
            Some("full") | Some("") | None => Scale::Full,
            Some(v) => {
                reject("SATIOT_SCALE", v, "the full campaign scale");
                Scale::Full
            }
        };
        let sink = match lookup("SATIOT_SINK").as_deref() {
            Some("aggregate") | Some("agg") => SinkMode::Aggregate,
            Some("null") => SinkMode::Null,
            // Spill paths leak once per parse so `RunOptions` stays
            // `Copy`; a process configures at most a handful of runs.
            Some(v) if v.starts_with("csv:") && v.len() > 4 => SinkMode::SpillCsv {
                path: Box::leak(v["csv:".len()..].to_string().into_boxed_str()),
            },
            Some(v) if v.starts_with("jsonl:") && v.len() > 6 => SinkMode::SpillJsonl {
                path: Box::leak(v["jsonl:".len()..].to_string().into_boxed_str()),
            },
            Some("full") | Some("") | None => SinkMode::Full,
            Some(v) => {
                reject("SATIOT_SINK", v, "the full-trace sink");
                SinkMode::Full
            }
        };
        let sweep_dir = lookup("SATIOT_SWEEP_DIR").and_then(|v| {
            if v.is_empty() {
                reject("SATIOT_SWEEP_DIR", &v, "no checkpointing");
                None
            } else {
                Some(&*Box::leak(v.into_boxed_str()))
            }
        });
        let sweep_shard = lookup("SATIOT_SWEEP_SHARD").and_then(|v| {
            let parsed = v.split_once('/').and_then(|(i, n)| {
                let i = i.trim().parse::<usize>().ok()?;
                let n = n.trim().parse::<usize>().ok()?;
                (i < n).then_some((i, n))
            });
            if parsed.is_none() {
                reject("SATIOT_SWEEP_SHARD", &v, "an unsharded sweep");
            }
            parsed
        });
        let sweep_cache_mb = lookup("SATIOT_SWEEP_CACHE_MB").and_then(|v| {
            match v.trim().parse::<u64>() {
                Ok(0) => None, // Documented: 0 = unlimited.
                Ok(mb) => Some(mb),
                Err(_) => {
                    reject("SATIOT_SWEEP_CACHE_MB", &v, "an unbounded cache");
                    None
                }
            }
        });
        let scenario = lookup("SATIOT_SCENARIO").and_then(|v| {
            if v.is_empty() {
                reject("SATIOT_SCENARIO", &v, "the compiled-in scenario");
                None
            } else {
                Some(&*Box::leak(v.into_boxed_str()))
            }
        });
        let opts = RunOptions {
            threads,
            ephemeris,
            visibility,
            culling,
            batch,
            chaos_seed,
            metrics,
            scale,
            sink,
            sweep_dir,
            sweep_shard,
            sweep_cache_mb,
            scenario,
        };
        (opts, warnings)
    }

    /// Override the pool worker count (`None` = machine default).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Override the ephemeris sampling backend.
    pub fn with_ephemeris(mut self, mode: EphemerisMode) -> Self {
        self.ephemeris = mode;
        self
    }

    /// Override the pass-prediction coarse-scan strategy.
    pub fn with_visibility(mut self, mode: VisibilityMode) -> Self {
        self.visibility = mode;
        self
    }

    /// Override the spatial pre-culling mode.
    pub fn with_culling(mut self, mode: CullingMode) -> Self {
        self.culling = mode;
        self
    }

    /// Override the simulate-phase batching strategy.
    pub fn with_batch(mut self, mode: BatchMode) -> Self {
        self.batch = mode;
        self
    }

    /// Override the chaos root seed.
    pub fn with_chaos_seed(mut self, seed: u64) -> Self {
        self.chaos_seed = seed;
        self
    }

    /// Override the metrics flag.
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Override the campaign scale.
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Override the simulate-phase trace sink.
    pub fn with_sink(mut self, sink: SinkMode) -> Self {
        self.sink = sink;
        self
    }

    /// Override the sweep-server spill directory (`None` = no
    /// checkpointing). The path is interned for the process lifetime so
    /// `RunOptions` stays `Copy`.
    pub fn with_sweep_dir(mut self, dir: Option<&str>) -> Self {
        self.sweep_dir = dir.map(|d| &*Box::leak(d.to_string().into_boxed_str()));
        self
    }

    /// Override the sweep shard assignment (`(index, count)`,
    /// `index < count`).
    pub fn with_sweep_shard(mut self, shard: Option<(usize, usize)>) -> Self {
        self.sweep_shard = shard;
        self
    }

    /// Override the combined cache payload budget in MiB (`None` =
    /// unlimited).
    pub fn with_sweep_cache_mb(mut self, mb: Option<u64>) -> Self {
        self.sweep_cache_mb = mb;
        self
    }

    /// Override the scenario file path (`None` = the compiled-in
    /// scenario). The path is interned for the process lifetime so
    /// `RunOptions` stays `Copy`.
    pub fn with_scenario(mut self, path: Option<&str>) -> Self {
        self.scenario = path.map(|p| &*Box::leak(p.to_string().into_boxed_str()));
        self
    }

    /// Install these options into the process-wide latches consumed by
    /// code below the campaign API: the pool worker count, the
    /// ephemeris mode, the visibility scan mode, the culling mode, the
    /// metrics flag, the chaos seed, and the cache payload budget.
    /// Binaries call `RunOptions::from_env().apply()` once at startup;
    /// returns `self` for chaining into a campaign call.
    pub fn apply(self) -> Self {
        pool::set_thread_count(self.threads);
        ephemeris::set_mode(self.ephemeris);
        visibility::set_mode(self.visibility);
        cull::set_mode(self.culling);
        satiot_obs::metrics::set_enabled(self.metrics);
        chaos::set_seed(self.chaos_seed);
        crate::sweep::set_cache_budget_bytes(self.sweep_cache_mb.map(|mb| mb << 20));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lookup_from(pairs: &[(&str, &str)]) -> impl Fn(&str) -> Option<String> {
        let map: HashMap<String, String> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        move |key: &str| map.get(key).cloned()
    }

    #[test]
    fn empty_lookup_matches_machine_defaults() {
        let opts = RunOptions::from_lookup(|_| None);
        assert_eq!(opts, RunOptions::default());
    }

    #[test]
    fn every_knob_parses() {
        let opts = RunOptions::from_lookup(lookup_from(&[
            ("SATIOT_THREADS", "4"),
            ("SATIOT_EPHEMERIS", "validate"),
            ("SATIOT_VISIBILITY", "scalar"),
            ("SATIOT_CULLING", "off"),
            ("SATIOT_BATCH", "0"),
            ("SATIOT_CHAOS_SEED", "12345"),
            ("SATIOT_METRICS", "1"),
            ("SATIOT_SCALE", "quick"),
            ("SATIOT_SINK", "aggregate"),
            ("SATIOT_SWEEP_DIR", "/tmp/sweep"),
            ("SATIOT_SWEEP_SHARD", "1/4"),
            ("SATIOT_SWEEP_CACHE_MB", "256"),
            ("SATIOT_SCENARIO", "/tmp/run.scenario.json"),
        ]));
        assert_eq!(opts.scenario, Some("/tmp/run.scenario.json"));
        assert_eq!(opts.sweep_dir, Some("/tmp/sweep"));
        assert_eq!(opts.sweep_shard, Some((1, 4)));
        assert_eq!(opts.sweep_cache_mb, Some(256));
        assert_eq!(opts.threads, Some(4));
        assert_eq!(opts.ephemeris, EphemerisMode::Validate);
        assert_eq!(opts.visibility, VisibilityMode::Scalar);
        assert_eq!(opts.culling, CullingMode::Off);
        assert_eq!(opts.batch, BatchMode::Off);
        assert_eq!(opts.chaos_seed, 12345);
        assert!(opts.metrics);
        assert_eq!(opts.scale, Scale::Quick);
        assert_eq!(opts.sink, SinkMode::Aggregate);
    }

    #[test]
    fn sink_knob_parses_every_mode() {
        let parse = |v: &str| RunOptions::from_lookup(lookup_from(&[("SATIOT_SINK", v)])).sink;
        assert_eq!(parse("full"), SinkMode::Full);
        assert_eq!(parse("aggregate"), SinkMode::Aggregate);
        assert_eq!(parse("agg"), SinkMode::Aggregate);
        assert_eq!(parse("null"), SinkMode::Null);
        match parse("csv:/tmp/run.csv") {
            SinkMode::SpillCsv { path } => assert_eq!(path, "/tmp/run.csv"),
            other => panic!("unexpected {other:?}"),
        }
        match parse("jsonl:/tmp/run.jsonl") {
            SinkMode::SpillJsonl { path } => assert_eq!(path, "/tmp/run.jsonl"),
            other => panic!("unexpected {other:?}"),
        }
        // Pathless spill specs and junk fall back to Full.
        assert_eq!(parse("csv:"), SinkMode::Full);
        assert_eq!(parse("jsonl:"), SinkMode::Full);
        assert_eq!(parse("parquet:/tmp/x"), SinkMode::Full);
    }

    #[test]
    fn malformed_values_fall_back() {
        let opts = RunOptions::from_lookup(lookup_from(&[
            ("SATIOT_THREADS", "zero"),
            ("SATIOT_EPHEMERIS", "plenty"),
            ("SATIOT_VISIBILITY", "simd512"),
            ("SATIOT_CULLING", "aggressive"),
            ("SATIOT_BATCH", "yes"),
            ("SATIOT_CHAOS_SEED", "-3"),
            ("SATIOT_METRICS", "0"),
            ("SATIOT_SCALE", "huge"),
            ("SATIOT_SINK", "firehose"),
        ]));
        assert_eq!(opts.threads, None);
        assert_eq!(opts.ephemeris, EphemerisMode::On);
        assert_eq!(opts.visibility, VisibilityMode::On);
        assert_eq!(opts.culling, CullingMode::On);
        assert_eq!(opts.batch, BatchMode::On);
        assert_eq!(opts.chaos_seed, chaos::DEFAULT_SEED);
        assert!(!opts.metrics);
        assert_eq!(opts.scale, Scale::Full);
        assert_eq!(opts.sink, SinkMode::Full);
    }

    #[test]
    fn threads_of_zero_means_auto() {
        let opts = RunOptions::from_lookup(lookup_from(&[("SATIOT_THREADS", "0")]));
        assert_eq!(opts.threads, None);
    }

    // ---- rejection paths: malformed values must fall back to the
    // documented default *and* say so, never silently mis-parse ----

    fn parse_with_warnings(pairs: &[(&str, &str)]) -> (RunOptions, Vec<String>) {
        RunOptions::from_lookup_with_warnings(lookup_from(pairs))
    }

    #[test]
    fn malformed_threads_warns_and_falls_back_to_auto() {
        for bad in ["zero", "-2", "3.5", "many", " "] {
            let (opts, warnings) = parse_with_warnings(&[("SATIOT_THREADS", bad)]);
            assert_eq!(opts.threads, None, "SATIOT_THREADS={bad:?}");
            assert_eq!(warnings.len(), 1, "SATIOT_THREADS={bad:?}: {warnings:?}");
            assert!(warnings[0].contains("SATIOT_THREADS"), "{warnings:?}");
        }
        // The documented spellings parse silently.
        for (good, want) in [("0", None), ("1", Some(1)), (" 8 ", Some(8))] {
            let (opts, warnings) = parse_with_warnings(&[("SATIOT_THREADS", good)]);
            assert_eq!(opts.threads, want, "SATIOT_THREADS={good:?}");
            assert!(warnings.is_empty(), "SATIOT_THREADS={good:?}: {warnings:?}");
        }
    }

    #[test]
    fn malformed_sink_warns_and_falls_back_to_full() {
        for bad in ["firehose", "csv:", "jsonl:", "aggregate "] {
            let (opts, warnings) = parse_with_warnings(&[("SATIOT_SINK", bad)]);
            assert_eq!(opts.sink, SinkMode::Full, "SATIOT_SINK={bad:?}");
            assert_eq!(warnings.len(), 1, "SATIOT_SINK={bad:?}: {warnings:?}");
            assert!(warnings[0].contains("SATIOT_SINK"), "{warnings:?}");
        }
        for good in [
            "full",
            "aggregate",
            "agg",
            "null",
            "csv:/tmp/a.csv",
            "jsonl:/tmp/a.jl",
        ] {
            let (_, warnings) = parse_with_warnings(&[("SATIOT_SINK", good)]);
            assert!(warnings.is_empty(), "SATIOT_SINK={good:?}: {warnings:?}");
        }
    }

    #[test]
    fn malformed_visibility_warns_and_falls_back_to_on() {
        for bad in ["simd512", "fast", "2"] {
            let (opts, warnings) = parse_with_warnings(&[("SATIOT_VISIBILITY", bad)]);
            assert_eq!(
                opts.visibility,
                VisibilityMode::On,
                "SATIOT_VISIBILITY={bad:?}"
            );
            assert_eq!(warnings.len(), 1, "SATIOT_VISIBILITY={bad:?}: {warnings:?}");
            assert!(warnings[0].contains("SATIOT_VISIBILITY"), "{warnings:?}");
        }
        for (good, want) in [
            ("0", VisibilityMode::Off),
            ("off", VisibilityMode::Off),
            ("scalar", VisibilityMode::Scalar),
            ("on", VisibilityMode::On),
            ("1", VisibilityMode::On),
        ] {
            let (opts, warnings) = parse_with_warnings(&[("SATIOT_VISIBILITY", good)]);
            assert_eq!(opts.visibility, want, "SATIOT_VISIBILITY={good:?}");
            assert!(
                warnings.is_empty(),
                "SATIOT_VISIBILITY={good:?}: {warnings:?}"
            );
        }
    }

    #[test]
    fn malformed_sweep_knobs_warn_and_fall_back() {
        for bad in ["3", "1/", "/4", "4/4", "5/4", "a/b", "1/4/2"] {
            let (opts, warnings) = parse_with_warnings(&[("SATIOT_SWEEP_SHARD", bad)]);
            assert_eq!(opts.sweep_shard, None, "SATIOT_SWEEP_SHARD={bad:?}");
            assert_eq!(
                warnings.len(),
                1,
                "SATIOT_SWEEP_SHARD={bad:?}: {warnings:?}"
            );
        }
        let (opts, warnings) = parse_with_warnings(&[("SATIOT_SWEEP_SHARD", "0/1")]);
        assert_eq!(opts.sweep_shard, Some((0, 1)));
        assert!(warnings.is_empty(), "{warnings:?}");

        let (opts, warnings) = parse_with_warnings(&[("SATIOT_SWEEP_CACHE_MB", "lots")]);
        assert_eq!(opts.sweep_cache_mb, None);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        let (opts, warnings) = parse_with_warnings(&[("SATIOT_SWEEP_CACHE_MB", "0")]);
        assert_eq!(
            opts.sweep_cache_mb, None,
            "0 is the documented unlimited spelling"
        );
        assert!(warnings.is_empty(), "{warnings:?}");

        let (opts, warnings) = parse_with_warnings(&[("SATIOT_SWEEP_DIR", "")]);
        assert_eq!(opts.sweep_dir, None);
        assert_eq!(warnings.len(), 1, "{warnings:?}");

        let (opts, warnings) = parse_with_warnings(&[("SATIOT_SCENARIO", "")]);
        assert_eq!(opts.scenario, None);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
    }

    #[test]
    fn every_rejection_path_warns_exactly_once() {
        let (opts, warnings) = parse_with_warnings(&[
            ("SATIOT_THREADS", "zero"),
            ("SATIOT_EPHEMERIS", "plenty"),
            ("SATIOT_VISIBILITY", "simd512"),
            ("SATIOT_CULLING", "aggressive"),
            ("SATIOT_BATCH", "yes"),
            ("SATIOT_CHAOS_SEED", "-3"),
            ("SATIOT_SCALE", "huge"),
            ("SATIOT_SINK", "firehose"),
            ("SATIOT_SWEEP_SHARD", "broken"),
            ("SATIOT_SWEEP_CACHE_MB", "big"),
            ("SATIOT_SCENARIO", ""),
        ]);
        // Every malformed knob fell back to its documented default…
        assert_eq!(
            opts,
            RunOptions::default(),
            "malformed values must not leak into the options"
        );
        // …and every one of them was reported.
        assert_eq!(warnings.len(), 11, "{warnings:?}");
    }

    #[test]
    fn builders_override_lookup_round_trip() {
        // Env parse → builder override: the builder wins field by
        // field, leaving the rest of the parsed values intact.
        let base = RunOptions::from_lookup(lookup_from(&[
            ("SATIOT_THREADS", "8"),
            ("SATIOT_BATCH", "off"),
            ("SATIOT_SCALE", "quick"),
        ]));
        let opts = base
            .with_threads(Some(2))
            .with_batch(BatchMode::On)
            .with_ephemeris(EphemerisMode::Off)
            .with_visibility(VisibilityMode::Off)
            .with_culling(CullingMode::Off)
            .with_chaos_seed(7)
            .with_metrics(true)
            .with_scale(Scale::Full)
            .with_sink(SinkMode::Aggregate);
        assert_eq!(opts.sink, SinkMode::Aggregate);
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.batch, BatchMode::On);
        assert_eq!(opts.ephemeris, EphemerisMode::Off);
        assert_eq!(opts.visibility, VisibilityMode::Off);
        assert_eq!(opts.culling, CullingMode::Off);
        assert_eq!(opts.chaos_seed, 7);
        assert!(opts.metrics);
        assert_eq!(opts.scale, Scale::Full);
        // Untouched builder chains preserve the parsed values.
        assert_eq!(base.threads, Some(8));
        assert_eq!(base.batch, BatchMode::Off);
        assert_eq!(base.scale, Scale::Quick);
    }

    #[test]
    fn scale_dimensions() {
        assert_eq!(Scale::Quick.passive_days(), 5.0);
        assert_eq!(Scale::Quick.active_days(), 5.0);
        assert!(Scale::Full.passive_days().is_infinite());
        assert_eq!(Scale::Full.active_days(), 30.0);
        assert!(Scale::Full.availability_days() > Scale::Quick.availability_days());
    }
}
