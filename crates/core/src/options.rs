//! Typed campaign run options: the one place `SATIOT_*` knobs are read.
//!
//! Before this module, every binary re-read its own slice of the
//! environment (`SATIOT_THREADS` in the pool, `SATIOT_EPHEMERIS` in the
//! orbit crate, `SATIOT_METRICS` in obs, `SATIOT_CHAOS_SEED` in sim,
//! `SATIOT_SCALE` in bench), which made a campaign's effective
//! configuration impossible to see in one place and impossible to set
//! programmatically without mutating the process environment.
//! [`RunOptions`] replaces that: campaigns take `&RunOptions`, the
//! environment is parsed exactly once by [`RunOptions::from_env`], and
//! [`RunOptions::apply`] installs the process-wide latches (pool worker
//! count, ephemeris mode, visibility scan mode, metrics flag, chaos
//! seed) for code that sits below the campaign API.
//!
//! ```
//! use satiot_core::options::{BatchMode, RunOptions};
//! use satiot_orbit::ephemeris::EphemerisMode;
//!
//! // Machine defaults; no environment involved.
//! let opts = RunOptions::default();
//! assert_eq!(opts.batch, BatchMode::On);
//!
//! // Builder-style overrides on top of the environment.
//! let opts = RunOptions::from_env()
//!     .with_threads(Some(2))
//!     .with_ephemeris(EphemerisMode::Off)
//!     .with_batch(BatchMode::Off);
//! assert_eq!(opts.threads, Some(2));
//! ```

use crate::sink::SinkMode;
use satiot_orbit::cull::{self, CullingMode};
use satiot_orbit::ephemeris::{self, EphemerisMode};
use satiot_orbit::visibility::{self, VisibilityMode};
use satiot_sim::{chaos, pool};

/// Whether the campaign simulate phase runs the batched SoA channel
/// kernels or the element-at-a-time scalar path.
///
/// Both paths are bit-identical (the A/B invariant `determinism_smoke`
/// pins); [`BatchMode::Off`] exists for baselining and bisection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Gather each pass into SoA arenas and run the chunked kernels
    /// (the default).
    #[default]
    On,
    /// Evaluate the channel chain one beacon at a time (the legacy hot
    /// path; `SATIOT_BATCH=0`).
    Off,
}

/// Campaign scale: truncated smoke dimensions or the paper's full ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Truncated campaigns for smoke runs (CI, benches);
    /// `SATIOT_SCALE=quick`.
    Quick,
    /// The paper's full campaign dimensions (the default).
    #[default]
    Full,
}

impl Scale {
    /// Read the scale from `SATIOT_SCALE` (default: full).
    pub fn from_env() -> Scale {
        RunOptions::from_env().scale
    }

    /// Per-site cap on passive campaign days.
    pub fn passive_days(self) -> f64 {
        match self {
            Scale::Quick => 5.0,
            Scale::Full => f64::INFINITY,
        }
    }

    /// Active campaign length, days (paper: one month).
    pub fn active_days(self) -> f64 {
        match self {
            Scale::Quick => 5.0,
            Scale::Full => 30.0,
        }
    }

    /// Days used for the theoretical-availability analysis (Fig 3a).
    pub fn availability_days(self) -> u32 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 14,
        }
    }
}

/// Typed options for one campaign run.
///
/// `Default` is the machine default (auto thread count, grids on,
/// batching on, metrics off) with **no** environment involvement —
/// hermetic for tests. [`from_env`](Self::from_env) layers the
/// `SATIOT_*` knobs on top; the `with_*` builders override either.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Worker threads for the sweep pool phases; `None` uses the
    /// machine's available parallelism (`SATIOT_THREADS`).
    pub threads: Option<usize>,
    /// Pass-prediction sampling backend (`SATIOT_EPHEMERIS`).
    pub ephemeris: EphemerisMode,
    /// Pass-prediction coarse-scan strategy (`SATIOT_VISIBILITY`:
    /// `0`/`off` = legacy adaptive scan, `scalar` = element-at-a-time
    /// margin sweep, anything else = chunked vector kernels).
    pub visibility: VisibilityMode,
    /// Spatial pre-culling of (site, satellite) pairs before pass
    /// prediction (`SATIOT_CULLING`: `0`/`off` = predict every pair,
    /// bit-identical legacy; anything else = conservative cull, the
    /// default).
    pub culling: CullingMode,
    /// Simulate-phase channel evaluation strategy (`SATIOT_BATCH`).
    pub batch: BatchMode,
    /// Root seed for the chaos perturbation engine
    /// (`SATIOT_CHAOS_SEED`).
    pub chaos_seed: u64,
    /// Whether the `satiot_obs` metrics registry records
    /// (`SATIOT_METRICS`).
    pub metrics: bool,
    /// Campaign scale for the bench/reproduction binaries
    /// (`SATIOT_SCALE`).
    pub scale: Scale,
    /// Where the simulate phase routes decoded beacon traces
    /// (`SATIOT_SINK`: `full` | `aggregate` | `null` | `csv:<path>` |
    /// `jsonl:<path>`).
    pub sink: SinkMode,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: None,
            ephemeris: EphemerisMode::On,
            visibility: VisibilityMode::On,
            culling: CullingMode::On,
            batch: BatchMode::On,
            chaos_seed: chaos::DEFAULT_SEED,
            metrics: false,
            scale: Scale::Full,
            sink: SinkMode::Full,
        }
    }
}

impl RunOptions {
    /// Options resolved from the `SATIOT_*` environment variables —
    /// the **only** place in the workspace that reads them.
    pub fn from_env() -> RunOptions {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// [`from_env`](Self::from_env) with an injectable variable source
    /// (tests exercise the parsing without touching the process
    /// environment).
    pub fn from_lookup<F: Fn(&str) -> Option<String>>(lookup: F) -> RunOptions {
        let threads = lookup("SATIOT_THREADS")
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let ephemeris = match lookup("SATIOT_EPHEMERIS").as_deref() {
            Some("0") | Some("off") | Some("false") => EphemerisMode::Off,
            Some("validate") => EphemerisMode::Validate,
            _ => EphemerisMode::On,
        };
        let visibility = match lookup("SATIOT_VISIBILITY").as_deref() {
            Some("0") | Some("off") | Some("false") => VisibilityMode::Off,
            Some("scalar") => VisibilityMode::Scalar,
            _ => VisibilityMode::On,
        };
        let culling = match lookup("SATIOT_CULLING").as_deref() {
            Some("0") | Some("off") | Some("false") => CullingMode::Off,
            _ => CullingMode::On,
        };
        let batch = match lookup("SATIOT_BATCH").as_deref() {
            Some("0") | Some("off") | Some("false") => BatchMode::Off,
            _ => BatchMode::On,
        };
        let chaos_seed = lookup("SATIOT_CHAOS_SEED")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(chaos::DEFAULT_SEED);
        let metrics = lookup("SATIOT_METRICS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let scale = match lookup("SATIOT_SCALE").as_deref() {
            Some("quick") => Scale::Quick,
            _ => Scale::Full,
        };
        let sink = match lookup("SATIOT_SINK").as_deref() {
            Some("aggregate") | Some("agg") => SinkMode::Aggregate,
            Some("null") => SinkMode::Null,
            // Spill paths leak once per parse so `RunOptions` stays
            // `Copy`; a process configures at most a handful of runs.
            Some(v) if v.starts_with("csv:") && v.len() > 4 => SinkMode::SpillCsv {
                path: Box::leak(v["csv:".len()..].to_string().into_boxed_str()),
            },
            Some(v) if v.starts_with("jsonl:") && v.len() > 6 => SinkMode::SpillJsonl {
                path: Box::leak(v["jsonl:".len()..].to_string().into_boxed_str()),
            },
            _ => SinkMode::Full,
        };
        RunOptions {
            threads,
            ephemeris,
            visibility,
            culling,
            batch,
            chaos_seed,
            metrics,
            scale,
            sink,
        }
    }

    /// Override the pool worker count (`None` = machine default).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Override the ephemeris sampling backend.
    pub fn with_ephemeris(mut self, mode: EphemerisMode) -> Self {
        self.ephemeris = mode;
        self
    }

    /// Override the pass-prediction coarse-scan strategy.
    pub fn with_visibility(mut self, mode: VisibilityMode) -> Self {
        self.visibility = mode;
        self
    }

    /// Override the spatial pre-culling mode.
    pub fn with_culling(mut self, mode: CullingMode) -> Self {
        self.culling = mode;
        self
    }

    /// Override the simulate-phase batching strategy.
    pub fn with_batch(mut self, mode: BatchMode) -> Self {
        self.batch = mode;
        self
    }

    /// Override the chaos root seed.
    pub fn with_chaos_seed(mut self, seed: u64) -> Self {
        self.chaos_seed = seed;
        self
    }

    /// Override the metrics flag.
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Override the campaign scale.
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Override the simulate-phase trace sink.
    pub fn with_sink(mut self, sink: SinkMode) -> Self {
        self.sink = sink;
        self
    }

    /// Install these options into the process-wide latches consumed by
    /// code below the campaign API: the pool worker count, the
    /// ephemeris mode, the visibility scan mode, the culling mode, the
    /// metrics flag, and the chaos seed. Binaries
    /// call `RunOptions::from_env().apply()` once at startup; returns
    /// `self` for chaining into a campaign call.
    pub fn apply(self) -> Self {
        pool::set_thread_count(self.threads);
        ephemeris::set_mode(self.ephemeris);
        visibility::set_mode(self.visibility);
        cull::set_mode(self.culling);
        satiot_obs::metrics::set_enabled(self.metrics);
        chaos::set_seed(self.chaos_seed);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lookup_from(pairs: &[(&str, &str)]) -> impl Fn(&str) -> Option<String> {
        let map: HashMap<String, String> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        move |key: &str| map.get(key).cloned()
    }

    #[test]
    fn empty_lookup_matches_machine_defaults() {
        let opts = RunOptions::from_lookup(|_| None);
        assert_eq!(opts, RunOptions::default());
    }

    #[test]
    fn every_knob_parses() {
        let opts = RunOptions::from_lookup(lookup_from(&[
            ("SATIOT_THREADS", "4"),
            ("SATIOT_EPHEMERIS", "validate"),
            ("SATIOT_VISIBILITY", "scalar"),
            ("SATIOT_CULLING", "off"),
            ("SATIOT_BATCH", "0"),
            ("SATIOT_CHAOS_SEED", "12345"),
            ("SATIOT_METRICS", "1"),
            ("SATIOT_SCALE", "quick"),
            ("SATIOT_SINK", "aggregate"),
        ]));
        assert_eq!(opts.threads, Some(4));
        assert_eq!(opts.ephemeris, EphemerisMode::Validate);
        assert_eq!(opts.visibility, VisibilityMode::Scalar);
        assert_eq!(opts.culling, CullingMode::Off);
        assert_eq!(opts.batch, BatchMode::Off);
        assert_eq!(opts.chaos_seed, 12345);
        assert!(opts.metrics);
        assert_eq!(opts.scale, Scale::Quick);
        assert_eq!(opts.sink, SinkMode::Aggregate);
    }

    #[test]
    fn sink_knob_parses_every_mode() {
        let parse = |v: &str| RunOptions::from_lookup(lookup_from(&[("SATIOT_SINK", v)])).sink;
        assert_eq!(parse("full"), SinkMode::Full);
        assert_eq!(parse("aggregate"), SinkMode::Aggregate);
        assert_eq!(parse("agg"), SinkMode::Aggregate);
        assert_eq!(parse("null"), SinkMode::Null);
        match parse("csv:/tmp/run.csv") {
            SinkMode::SpillCsv { path } => assert_eq!(path, "/tmp/run.csv"),
            other => panic!("unexpected {other:?}"),
        }
        match parse("jsonl:/tmp/run.jsonl") {
            SinkMode::SpillJsonl { path } => assert_eq!(path, "/tmp/run.jsonl"),
            other => panic!("unexpected {other:?}"),
        }
        // Pathless spill specs and junk fall back to Full.
        assert_eq!(parse("csv:"), SinkMode::Full);
        assert_eq!(parse("jsonl:"), SinkMode::Full);
        assert_eq!(parse("parquet:/tmp/x"), SinkMode::Full);
    }

    #[test]
    fn malformed_values_fall_back() {
        let opts = RunOptions::from_lookup(lookup_from(&[
            ("SATIOT_THREADS", "zero"),
            ("SATIOT_EPHEMERIS", "plenty"),
            ("SATIOT_VISIBILITY", "simd512"),
            ("SATIOT_CULLING", "aggressive"),
            ("SATIOT_BATCH", "yes"),
            ("SATIOT_CHAOS_SEED", "-3"),
            ("SATIOT_METRICS", "0"),
            ("SATIOT_SCALE", "huge"),
            ("SATIOT_SINK", "firehose"),
        ]));
        assert_eq!(opts.threads, None);
        assert_eq!(opts.ephemeris, EphemerisMode::On);
        assert_eq!(opts.visibility, VisibilityMode::On);
        assert_eq!(opts.culling, CullingMode::On);
        assert_eq!(opts.batch, BatchMode::On);
        assert_eq!(opts.chaos_seed, chaos::DEFAULT_SEED);
        assert!(!opts.metrics);
        assert_eq!(opts.scale, Scale::Full);
        assert_eq!(opts.sink, SinkMode::Full);
    }

    #[test]
    fn threads_of_zero_means_auto() {
        let opts = RunOptions::from_lookup(lookup_from(&[("SATIOT_THREADS", "0")]));
        assert_eq!(opts.threads, None);
    }

    #[test]
    fn builders_override_lookup_round_trip() {
        // Env parse → builder override: the builder wins field by
        // field, leaving the rest of the parsed values intact.
        let base = RunOptions::from_lookup(lookup_from(&[
            ("SATIOT_THREADS", "8"),
            ("SATIOT_BATCH", "off"),
            ("SATIOT_SCALE", "quick"),
        ]));
        let opts = base
            .with_threads(Some(2))
            .with_batch(BatchMode::On)
            .with_ephemeris(EphemerisMode::Off)
            .with_visibility(VisibilityMode::Off)
            .with_culling(CullingMode::Off)
            .with_chaos_seed(7)
            .with_metrics(true)
            .with_scale(Scale::Full)
            .with_sink(SinkMode::Aggregate);
        assert_eq!(opts.sink, SinkMode::Aggregate);
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.batch, BatchMode::On);
        assert_eq!(opts.ephemeris, EphemerisMode::Off);
        assert_eq!(opts.visibility, VisibilityMode::Off);
        assert_eq!(opts.culling, CullingMode::Off);
        assert_eq!(opts.chaos_seed, 7);
        assert!(opts.metrics);
        assert_eq!(opts.scale, Scale::Full);
        // Untouched builder chains preserve the parsed values.
        assert_eq!(base.threads, Some(8));
        assert_eq!(base.batch, BatchMode::Off);
        assert_eq!(base.scale, Scale::Quick);
    }

    #[test]
    fn scale_dimensions() {
        assert_eq!(Scale::Quick.passive_days(), 5.0);
        assert_eq!(Scale::Quick.active_days(), 5.0);
        assert!(Scale::Full.passive_days().is_infinite());
        assert_eq!(Scale::Full.active_days(), 30.0);
        assert!(Scale::Full.availability_days() > Scale::Quick.availability_days());
    }
}
