//! The DtS application protocol messages, serialised through the
//! `satiot-phy` frame codec.
//!
//! Three message types flow over the DtS link:
//!
//! * [`Beacon`] — satellite → ground broadcast announcing the gateway.
//! * [`Uplink`] — node → satellite sensor data with a sequence ID.
//! * [`Ack`] — satellite → node confirmation of one uplink.
//!
//! Each message serialises into a typed payload (1-byte discriminant +
//! big-endian fields) carried inside a [`satiot_phy::frame::LoRaFrame`],
//! so the full encode → corrupt → CRC-reject path of a real modem is
//! exercised by the simulator.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use satiot_phy::frame::{FrameError, LoRaFrame};
use satiot_phy::params::CodingRate;

/// Message discriminants.
const TAG_BEACON: u8 = 0x01;
const TAG_UPLINK: u8 = 0x02;
const TAG_ACK: u8 = 0x03;

/// Errors decoding a DtS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// The underlying PHY frame failed to decode.
    Frame(FrameError),
    /// Unknown message tag.
    UnknownTag(u8),
    /// Payload shorter than the message requires.
    Truncated,
}

impl From<FrameError> for MessageError {
    fn from(e: FrameError) -> Self {
        MessageError::Frame(e)
    }
}

impl core::fmt::Display for MessageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MessageError::Frame(e) => write!(f, "phy frame: {e}"),
            MessageError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            MessageError::Truncated => write!(f, "message payload truncated"),
        }
    }
}

impl std::error::Error for MessageError {}

/// A satellite gateway beacon, carrying the housekeeping telemetry
/// TinyGS-class beacons publish (battery, temperature, uptime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Beacon {
    /// Satellite identifier.
    pub sat_id: u32,
    /// Monotonic beacon counter.
    pub counter: u32,
    /// Bus battery voltage, millivolts.
    pub battery_mv: u16,
    /// Payload temperature, 0.1 °C steps.
    pub temperature_dc: i16,
    /// Seconds since last payload reboot.
    pub uptime_s: u32,
    /// Packets currently in the store-and-forward buffer.
    pub buffered: u16,
}

impl Beacon {
    /// A beacon with nominal housekeeping values.
    pub fn nominal(sat_id: u32, counter: u32) -> Beacon {
        Beacon {
            sat_id,
            counter,
            battery_mv: 7_900,
            temperature_dc: 184, // 18.4 °C in sunlight-averaged LEO.
            uptime_s: counter.wrapping_mul(60),
            buffered: 0,
        }
    }
}

/// A node's sensor-data uplink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Uplink {
    /// Sending node identifier.
    pub node_id: u32,
    /// Application sequence ID (unique per packet, reused across
    /// retransmissions — the server deduplicates on it).
    pub seq: u64,
    /// Sensor payload bytes.
    pub data: Bytes,
}

/// A satellite's acknowledgement of one uplink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// Acknowledged node.
    pub node_id: u32,
    /// Acknowledged sequence ID.
    pub seq: u64,
}

/// Any DtS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Satellite beacon.
    Beacon(Beacon),
    /// Node uplink.
    Uplink(Uplink),
    /// Satellite ACK.
    Ack(Ack),
}

impl Message {
    /// Serialise into a PHY frame with the given coding rate.
    pub fn to_frame(&self, cr: CodingRate) -> LoRaFrame {
        let mut buf = BytesMut::new();
        match self {
            Message::Beacon(b) => {
                buf.put_u8(TAG_BEACON);
                buf.put_u32(b.sat_id);
                buf.put_u32(b.counter);
                buf.put_u16(b.battery_mv);
                buf.put_i16(b.temperature_dc);
                buf.put_u32(b.uptime_s);
                buf.put_u16(b.buffered);
                // Reserved bytes keep the wire image at the calibrated
                // 24-byte beacon payload.
                buf.put_slice(&[0u8; 5]);
            }
            Message::Uplink(u) => {
                buf.put_u8(TAG_UPLINK);
                buf.put_u32(u.node_id);
                buf.put_u64(u.seq);
                buf.put_slice(&u.data);
            }
            Message::Ack(a) => {
                buf.put_u8(TAG_ACK);
                buf.put_u32(a.node_id);
                buf.put_u64(a.seq);
            }
        }
        LoRaFrame::new(buf.freeze(), cr)
    }

    /// Parse from a decoded PHY frame payload.
    pub fn from_frame(frame: &LoRaFrame) -> Result<Message, MessageError> {
        let mut buf = frame.payload.clone();
        if buf.is_empty() {
            return Err(MessageError::Truncated);
        }
        let tag = buf.get_u8();
        match tag {
            TAG_BEACON => {
                if buf.len() < 23 {
                    return Err(MessageError::Truncated);
                }
                let sat_id = buf.get_u32();
                let counter = buf.get_u32();
                let battery_mv = buf.get_u16();
                let temperature_dc = buf.get_i16();
                let uptime_s = buf.get_u32();
                let buffered = buf.get_u16();
                Ok(Message::Beacon(Beacon {
                    sat_id,
                    counter,
                    battery_mv,
                    temperature_dc,
                    uptime_s,
                    buffered,
                }))
            }
            TAG_UPLINK => {
                if buf.len() < 12 {
                    return Err(MessageError::Truncated);
                }
                let node_id = buf.get_u32();
                let seq = buf.get_u64();
                Ok(Message::Uplink(Uplink {
                    node_id,
                    seq,
                    data: buf,
                }))
            }
            TAG_ACK => {
                if buf.len() < 12 {
                    return Err(MessageError::Truncated);
                }
                let node_id = buf.get_u32();
                let seq = buf.get_u64();
                Ok(Message::Ack(Ack { node_id, seq }))
            }
            other => Err(MessageError::UnknownTag(other)),
        }
    }

    /// Wire round trip: encode to frame bytes and decode back. Used by
    /// the campaign to exercise the full codec path.
    pub fn wire_round_trip(&self, cr: CodingRate) -> Result<Message, MessageError> {
        let wire = self.to_frame(cr).encode();
        let frame = LoRaFrame::decode(wire)?;
        Message::from_frame(&frame)
    }

    /// PHY payload length of this message when framed (bytes) — the
    /// length the airtime formula should be fed.
    pub fn phy_payload_len(&self, cr: CodingRate) -> usize {
        self.to_frame(cr).wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_round_trip() {
        let msg = Message::Beacon(Beacon {
            sat_id: 17,
            counter: 123_456,
            battery_mv: 7_421,
            temperature_dc: -125, // −12.5 °C in eclipse.
            uptime_s: 86_400 * 40,
            buffered: 512,
        });
        assert_eq!(msg.wire_round_trip(CodingRate::Cr4_5).unwrap(), msg);
    }

    #[test]
    fn uplink_round_trip_preserves_data() {
        let msg = Message::Uplink(Uplink {
            node_id: 2,
            seq: 0xDEAD_BEEF_0042,
            data: Bytes::from_static(b"soil=0.31;t=22.4C;rh=88"),
        });
        let back = msg.wire_round_trip(CodingRate::Cr4_8).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn ack_round_trip() {
        let msg = Message::Ack(Ack {
            node_id: 1,
            seq: 99,
        });
        assert_eq!(msg.wire_round_trip(CodingRate::Cr4_5).unwrap(), msg);
    }

    #[test]
    fn beacon_payload_length_matches_calibration() {
        let msg = Message::Beacon(Beacon::nominal(0, 0));
        let frame = msg.to_frame(CodingRate::Cr4_5);
        assert_eq!(frame.payload.len(), crate::calib::BEACON_PAYLOAD_BYTES);
    }

    #[test]
    fn nominal_beacon_is_sane() {
        let b = Beacon::nominal(3, 7);
        assert_eq!(b.sat_id, 3);
        assert!(b.battery_mv > 6_000);
        assert_eq!(b.uptime_s, 420);
    }

    #[test]
    fn corrupted_wire_is_rejected() {
        let msg = Message::Uplink(Uplink {
            node_id: 1,
            seq: 7,
            data: Bytes::from_static(&[9; 20]),
        });
        let mut wire = msg.to_frame(CodingRate::Cr4_8).encode().to_vec();
        let mid = wire.len() / 2;
        wire[mid] ^= 0xA5;
        let result = LoRaFrame::decode(Bytes::from(wire)).map_err(MessageError::from);
        assert!(result.is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let frame = LoRaFrame::new(Bytes::from_static(&[0x7F, 0, 0, 0, 0]), CodingRate::Cr4_5);
        assert_eq!(
            Message::from_frame(&frame),
            Err(MessageError::UnknownTag(0x7F))
        );
    }

    #[test]
    fn truncated_messages_are_rejected() {
        for tag in [TAG_BEACON, TAG_UPLINK, TAG_ACK] {
            let frame = LoRaFrame::new(Bytes::from(vec![tag, 1, 2]), CodingRate::Cr4_5);
            assert_eq!(Message::from_frame(&frame), Err(MessageError::Truncated));
        }
        let empty = LoRaFrame::new(Bytes::new(), CodingRate::Cr4_5);
        assert_eq!(Message::from_frame(&empty), Err(MessageError::Truncated));
    }

    #[test]
    fn uplink_phy_length_tracks_data_size() {
        let small = Message::Uplink(Uplink {
            node_id: 0,
            seq: 0,
            data: Bytes::from(vec![0; 10]),
        });
        let large = Message::Uplink(Uplink {
            node_id: 0,
            seq: 0,
            data: Bytes::from(vec![0; 120]),
        });
        let d = large.phy_payload_len(CodingRate::Cr4_8) - small.phy_payload_len(CodingRate::Cr4_8);
        assert_eq!(d, 110);
    }
}
