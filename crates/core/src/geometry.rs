//! Sampled pass geometry shared by both campaigns.
//!
//! Given a predicted pass, both the passive receiver model and the active
//! protocol simulation need per-instant geometry: elevation, slant range,
//! Doppler shift, and Doppler *rate* (the drift that smears high-SF
//! packets — see `satiot_phy::doppler`).

use satiot_obs::metrics::Counter;
use satiot_orbit::pass::{Pass, PassPredictor};
use satiot_orbit::time::JulianDate;

/// Degenerate passes (non-finite or non-positive duration, or a
/// non-finite beacon interval/phase) rejected by [`beacon_times`]
/// (metrics).
static DEGENERATE_PASSES: Counter = Counter::new("core.geometry.degenerate_passes");

/// Geometry at one instant of a pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometrySample {
    /// Sample instant.
    pub t: JulianDate,
    /// Elevation above the horizon, radians.
    pub elevation_rad: f64,
    /// Slant range, km.
    pub range_km: f64,
    /// Doppler shift at the carrier, Hz.
    pub doppler_hz: f64,
    /// Doppler drift rate, Hz/s (numerical derivative over 1 s).
    pub doppler_rate_hz_s: f64,
}

/// Sample the geometry at `t` for a link at `carrier_hz`. Returns `None`
/// if propagation fails (which healthy LEO elements never do mid-pass).
pub fn sample_at(
    predictor: &PassPredictor,
    t: JulianDate,
    carrier_hz: f64,
) -> Option<GeometrySample> {
    let la = predictor.look_at(t)?;
    let doppler = la.doppler_shift_hz(carrier_hz);
    let la_next = predictor.look_at(t.plus_seconds(1.0))?;
    let doppler_next = la_next.doppler_shift_hz(carrier_hz);
    Some(GeometrySample {
        t,
        elevation_rad: la.elevation_rad,
        range_km: la.range_km,
        doppler_hz: doppler,
        doppler_rate_hz_s: doppler_next - doppler,
    })
}

/// Beacon emission instants within a pass: every `interval_s` starting at
/// `phase_s` past AOS (satellites beacon on their own clock; the phase
/// decorrelates beacon timing from window boundaries).
pub fn beacon_times(pass: &Pass, interval_s: f64, phase_s: f64) -> Vec<JulianDate> {
    let mut out = Vec::new();
    if !(interval_s.is_finite() && interval_s > 0.0) {
        return out;
    }
    // Guard degenerate passes explicitly: a NaN duration would fall out
    // of the loop silently (every comparison is false) and a negative
    // one would silently yield nothing — both are input damage worth
    // surfacing, not healthy empty windows. Note the count and bail.
    let duration = pass.duration_s();
    if !(duration.is_finite() && duration > 0.0 && phase_s.is_finite()) {
        DEGENERATE_PASSES.inc();
        return out;
    }
    let mut t = phase_s.rem_euclid(interval_s);
    while t <= duration {
        out.push(pass.aos.plus_seconds(t));
        t += interval_s;
    }
    out
}

/// Whether a pass has a well-formed, positive-duration window (finite
/// AOS/LOS/TCA and `los > aos`). Campaign drivers use this to skip and
/// count degenerate passes instead of feeding them to samplers.
pub fn pass_is_well_formed(pass: &Pass) -> bool {
    pass.aos.0.is_finite()
        && pass.los.0.is_finite()
        && pass.tca.0.is_finite()
        && pass.duration_s() > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_orbit::elements::Elements;
    use satiot_orbit::frames::Geodetic;

    fn predictor() -> PassPredictor {
        let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let sgp4 = Elements::circular(550.0, 97.6, epoch).to_sgp4().unwrap();
        PassPredictor::new(sgp4, Geodetic::from_degrees(22.32, 114.17, 0.05), 0.0)
    }

    fn first_pass(p: &PassPredictor) -> Pass {
        let start = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        p.passes(start, start + 1.0)[0]
    }

    #[test]
    fn doppler_crosses_zero_near_tca() {
        let p = predictor();
        let pass = first_pass(&p);
        let carrier = 400.45e6;
        let early = sample_at(&p, pass.aos.plus_seconds(10.0), carrier).unwrap();
        let late = sample_at(&p, pass.los.plus_seconds(-10.0), carrier).unwrap();
        let tca = sample_at(&p, pass.tca, carrier).unwrap();
        // Approaching before TCA (positive shift), receding after.
        assert!(early.doppler_hz > 0.0, "early {}", early.doppler_hz);
        assert!(late.doppler_hz < 0.0, "late {}", late.doppler_hz);
        assert!(
            tca.doppler_hz.abs() < early.doppler_hz.abs() / 4.0,
            "tca {}",
            tca.doppler_hz
        );
    }

    #[test]
    fn doppler_magnitude_matches_leo_physics() {
        // At 400 MHz a 7.6 km/s LEO gives at most ±~10 kHz.
        let p = predictor();
        let pass = first_pass(&p);
        for k in 0..=10 {
            let t = pass.aos.plus_seconds(pass.duration_s() * k as f64 / 10.0);
            let s = sample_at(&p, t, 400.45e6).unwrap();
            assert!(s.doppler_hz.abs() < 11_000.0, "doppler {}", s.doppler_hz);
        }
    }

    #[test]
    fn doppler_rate_peaks_near_tca() {
        let p = predictor();
        let pass = first_pass(&p);
        let carrier = 400.45e6;
        let tca = sample_at(&p, pass.tca, carrier).unwrap();
        let edge = sample_at(&p, pass.aos.plus_seconds(5.0), carrier).unwrap();
        assert!(
            tca.doppler_rate_hz_s.abs() > edge.doppler_rate_hz_s.abs(),
            "tca rate {} vs edge {}",
            tca.doppler_rate_hz_s,
            edge.doppler_rate_hz_s
        );
        // Rate is negative through the pass (shift falls monotonically)
        // and bounded by LEO physics (≲ 300 Hz/s at 400 MHz).
        assert!(tca.doppler_rate_hz_s < 0.0);
        assert!(tca.doppler_rate_hz_s.abs() < 300.0);
    }

    #[test]
    fn beacon_times_stay_inside_pass() {
        let p = predictor();
        let pass = first_pass(&p);
        let times = beacon_times(&pass, 8.0, 3.0);
        assert!(!times.is_empty());
        for t in &times {
            assert!(pass.contains(*t));
        }
        // Expected count ≈ duration / interval.
        let expected = (pass.duration_s() / 8.0) as usize;
        assert!((times.len() as i64 - expected as i64).abs() <= 1);
        // Consecutive spacing is the interval.
        for w in times.windows(2) {
            assert!((w[1].seconds_since(w[0]) - 8.0).abs() < 1e-3);
        }
    }

    #[test]
    fn beacon_phase_shifts_times() {
        let p = predictor();
        let pass = first_pass(&p);
        let a = beacon_times(&pass, 10.0, 0.0);
        let b = beacon_times(&pass, 10.0, 4.0);
        assert!((b[0].seconds_since(a[0]) - 4.0).abs() < 1e-3);
        // Degenerate interval.
        assert!(beacon_times(&pass, 0.0, 0.0).is_empty());
    }
}
