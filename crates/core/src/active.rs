//! The active measurement campaign (paper §2.3 / §3.2).
//!
//! Three battery-powered Tianqi nodes on a Yunnan coffee plantation
//! generate 20-byte readings every 30 minutes and push them through the
//! Tianqi constellation to a server in Hong Kong. The discrete-event
//! simulation models the full protocol:
//!
//! * nodes duty-cycle sniff for beacons, engage on a decode, and
//!   transmit slotted uplinks with ≤ 5 retransmissions gated on ACKs;
//! * uplinks from different nodes can collide at the satellite (capture
//!   effect, Fig 12b);
//! * satellites store accepted packets and deliver them once a Chinese
//!   ground station comes into view, plus an operator
//!   processing/batching delay (Fig 5d's delivery segment);
//! * ACKs traverse the lossy downlink, so a successfully received packet
//!   can still be retransmitted (the paper's "contradicting results"
//!   observation).
//!
//! Outputs: per-packet timelines (latency decomposition), sequence-ID
//! reliability, retransmission distributions, and per-node energy
//! residencies.

use crate::calib;
use crate::error::{Fault, FaultLog, SatIotError};
use crate::geometry::sample_at;
use crate::messages::{Ack, Beacon, Message, Uplink};
use crate::node::{BeaconReaction, NodeMachine};
use crate::options::RunOptions;
use crate::satellite::{merge_contacts, SatellitePayload};
use crate::server::DeliveryLog;
use crate::sweep::{self, GridKey, PassKey};
use satiot_channel::antenna::AntennaPattern;
use satiot_channel::budget::LinkBudget;
use satiot_channel::weather::{Weather, WeatherProcess};
use satiot_energy::accounting::EnergyAccount;
use satiot_energy::profile::{SatNodeMode, SatNodeProfile};
use satiot_measure::latency::PacketTimeline;
use satiot_measure::reliability::SentPacket;
use satiot_measure::sketch::{MetricSketch, LATENCY_WIDTH_MIN};
use satiot_obs::metrics::{Counter, Timer};
use satiot_orbit::pass::{Pass, PassPredictor};
use satiot_orbit::sgp4::Sgp4;
use satiot_orbit::time::JulianDate;
use satiot_phy::airtime::airtime_s;
use satiot_phy::collision::{sinr_db, Overlap};
use satiot_phy::doppler::{compensated_penalty_db, total_penalty_db};
use satiot_phy::params::LoRaConfig;
use satiot_phy::per::packet_decodes;
use satiot_scenarios::constellations::tianqi;
use satiot_scenarios::sites::{campaign_epoch, tianqi_ground_stations, yunnan_farm, Climate};
use satiot_sim::{pool, Engine, Rng, SimTime};
use std::sync::Arc;

use bytes::Bytes;

/// Farm passes driving the active campaign's event schedule (metrics).
static FARM_PASSES: Counter = Counter::new("core.active.farm_passes");
/// Wall-clock seconds each *(satellite × ground-station)* contact-plan
/// prediction task took on the sweep pool (metrics).
static CONTACT_PLAN_SHARD_S: Timer = Timer::new("core.active.contact_plan_shard_s");

/// Uplink medium-access policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacPolicy {
    /// Each node draws a uniform random slot in the response window after
    /// every beacon — what simple DtS systems (and our Tianqi model) do.
    RandomSlot,
    /// Deterministic TDMA: the response window is partitioned and each
    /// node owns slot `id mod slots` — a CosMAC-style constellation-aware
    /// assignment that eliminates intra-footprint collisions among
    /// coordinated nodes (cf. the paper's §3.1 takeaway on collision
    /// management).
    Tdma,
}

/// Active-campaign configuration.
#[derive(Debug, Clone)]
pub struct ActiveConfig {
    /// Root seed.
    pub seed: u64,
    /// Campaign length, days (paper: one month).
    pub days: f64,
    /// Number of deployed nodes (paper: 3).
    pub nodes: u32,
    /// Sensor payload size, bytes (paper default: 20; Fig 12a sweeps it).
    pub payload_bytes: usize,
    /// Sensor period, seconds.
    pub period_s: f64,
    /// Max DtS attempts per packet (1 = retransmission disabled).
    pub max_attempts: u32,
    /// Node antenna (Fig 5b compares ¼-wave and ⅝-wave).
    pub node_antenna: AntennaPattern,
    /// Force constant weather (controlled comparisons); `None` uses the
    /// subtropical farm weather process.
    pub weather_override: Option<Weather>,
    /// Node buffer capacity, packets.
    pub buffer_capacity: usize,
    /// Elevation mask for the operator's ground stations, radians.
    pub gs_mask_rad: f64,
    /// Effective downlink service time per packet, seconds of ground-
    /// station contact. This is the satellite's share of contact capacity
    /// per stored packet (the operator multiplexes every customer's
    /// traffic over the same contacts); `exp_ablation_downlink` sweeps it
    /// into the congested regime.
    pub downlink_service_s: f64,
    /// TLE-based Doppler pre-compensation on every DtS link — the
    /// optimisation the paper's conclusion calls for (`exp_ablation_doppler`).
    pub doppler_compensation: bool,
    /// Uplink medium-access policy (`exp_extension_mac`).
    pub mac: MacPolicy,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        ActiveConfig {
            seed: 0xF4A2,
            days: 30.0,
            nodes: 3,
            payload_bytes: calib::SENSOR_PAYLOAD_BYTES,
            period_s: calib::SENSOR_PERIOD_S,
            max_attempts: 1 + calib::MAX_RETRANSMISSIONS,
            node_antenna: AntennaPattern::FiveEighthsWaveMonopole,
            weather_override: None,
            buffer_capacity: calib::NODE_BUFFER_CAPACITY,
            gs_mask_rad: 10.0_f64.to_radians(),
            downlink_service_s: 1.0,
            doppler_compensation: false,
            mac: MacPolicy::RandomSlot,
        }
    }
}

impl ActiveConfig {
    /// A short campaign for tests.
    pub fn quick(days: f64) -> Self {
        ActiveConfig {
            days,
            ..Default::default()
        }
    }

    /// Build an active configuration from a resolved scenario. Unset
    /// scenario fields (`seed`, `max_days`, `nodes`, `traffic`) keep
    /// the paper's defaults. The active campaign's geometry is fixed
    /// (the Yunnan farm uplinking through Tianqi to the operator's
    /// ground stations), so the scenario's site/constellation
    /// selections do not change it; its knobs — population, traffic
    /// model, length, seed — do.
    pub fn from_scenario(scenario: &satiot_scenarios::ResolvedScenario) -> ActiveConfig {
        let mut cfg = ActiveConfig::default();
        if let Some(seed) = scenario.seed {
            cfg.seed = seed;
        }
        if let Some(days) = scenario.max_days {
            cfg.days = days;
        }
        if let Some(nodes) = scenario.nodes {
            cfg.nodes = nodes;
        }
        if let Some(traffic) = &scenario.traffic {
            cfg.payload_bytes = traffic.payload_bytes as usize;
            cfg.period_s = traffic.period_s;
        }
        cfg
    }
}

/// Per-packet bookkeeping.
#[derive(Debug, Clone)]
struct PacketRecord {
    node: u32,
    generated_s: f64,
    first_tx_s: Option<f64>,
    sat_rx_s: Option<f64>,
    delivered_s: Option<f64>,
    attempts: u32,
    weather: &'static str,
}

/// Aggregate campaign counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ActiveCounters {
    /// Beacons transmitted over the farm.
    pub beacons_tx: u64,
    /// Beacons decoded by at least one node.
    pub beacons_heard: u64,
    /// Uplink transmissions.
    pub uplinks_tx: u64,
    /// Uplinks decoded by a satellite.
    pub uplinks_ok: u64,
    /// Uplinks lost to collisions/SINR while another uplink overlapped.
    pub uplinks_collided: u64,
    /// ACKs transmitted by satellites.
    pub acks_tx: u64,
    /// ACKs decoded by nodes.
    pub acks_ok: u64,
    /// Duplicate uplinks stored-side (ACK-loss retransmissions).
    pub duplicates: u64,
}

/// The campaign output.
#[derive(Debug)]
pub struct ActiveResults {
    /// Per-packet latency timelines (one per generated packet).
    pub timelines: Vec<PacketTimeline>,
    /// Streaming sketch of end-to-end delivery latency in **minutes**
    /// (bucket width [`LATENCY_WIDTH_MIN`]), fed as packets deliver —
    /// the O(1)-memory counterpart of walking `timelines` after the
    /// fact, and the summary a bounded-memory active campaign keeps.
    pub latency_min: MetricSketch,
    /// Sent-packet records for reliability analyses.
    pub sent: Vec<SentPacket>,
    /// Sequence IDs delivered to the server.
    pub delivered_seqs: std::collections::HashSet<u64>,
    /// Per-node energy residency accounts.
    pub node_energy: Vec<EnergyAccount<SatNodeMode>>,
    /// Aggregate counters.
    pub counters: ActiveCounters,
    /// Node buffer drop ratios.
    pub node_drop_ratio: Vec<f64>,
    /// The subscriber server's arrival log (dedup bookkeeping).
    pub server: DeliveryLog,
    /// Campaign length actually simulated, seconds.
    pub horizon_s: f64,
    /// Recoverable input damage survived during the run (clamped config
    /// values, corrupt sequence numbers dropped, …).
    pub faults: FaultLog,
}

impl ActiveResults {
    /// End-to-end delivery ratio.
    pub fn reliability(&self) -> f64 {
        satiot_measure::reliability::Reliability::compute(&self.sent, &self.delivered_seqs).ratio()
    }

    /// Mean attempts per packet that was transmitted at least once.
    pub fn mean_attempts(&self) -> f64 {
        let tx: Vec<&SentPacket> = self.sent.iter().filter(|p| p.attempts > 0).collect();
        if tx.is_empty() {
            0.0
        } else {
            tx.iter().map(|p| p.attempts as f64).sum::<f64>() / tx.len() as f64
        }
    }
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A node's sensor fires.
    DataGen { node: usize },
    /// A satellite starts emitting a beacon during a farm pass.
    BeaconTx {
        sat: usize,
        pass: usize,
        counter: u32,
    },
    /// A node's uplink transmission completes at the satellite.
    UplinkEnd {
        node: usize,
        pass: usize,
        seq: u64,
        start_s: f64,
    },
    /// A satellite's ACK completes at the node.
    AckEnd {
        node: usize,
        seq: u64,
        sat: usize,
        pass: usize,
    },
    /// A node's ACK-wait deadline.
    AckTimeout { node: usize, seq: u64 },
    /// A farm pass ends (LOS).
    PassEnd { pass: usize },
}

/// An uplink in flight (for collision resolution).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    node: usize,
    sat: usize,
    seq: u64,
    start_s: f64,
    end_s: f64,
    rssi_dbm: f64,
    snr_db: f64,
}

/// The active campaign driver.
pub struct ActiveCampaign {
    config: ActiveConfig,
}

impl ActiveCampaign {
    /// Create a campaign.
    pub fn new(config: ActiveConfig) -> Self {
        ActiveCampaign { config }
    }

    /// Run the simulation.
    ///
    /// `opts` selects the thread count for the contact-plan sweep and
    /// the ephemeris backend for every predictor. The event-driven
    /// uplink path stays scalar regardless of `opts.batch` — its RNG
    /// draws interleave with event scheduling, so there is no gather
    /// phase to batch — but the grid-backed geometry sampling applies
    /// here exactly as in the passive campaign.
    ///
    /// # Errors
    ///
    /// Returns [`SatIotError`] when the configuration cannot drive the
    /// event loop at all (non-finite `days`, a non-positive sensor
    /// period that would stall the scheduler, non-finite mask/service
    /// values, or catalog elements that fail to build). Out-of-range
    /// but finite values — an elevation mask beyond [0, π/2], a
    /// negative downlink service time, zero `max_attempts` — are
    /// clamped and counted in [`ActiveResults::faults`].
    pub fn run(&self, opts: &RunOptions) -> Result<ActiveResults, SatIotError> {
        let cfg = &self.config;
        validate(cfg)?;
        let threads = opts.threads.unwrap_or_else(pool::thread_count);
        let mut faults = FaultLog::default();
        let t0 = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let horizon_s = cfg.days * 86_400.0;
        let farm = yunnan_farm();
        let root = Rng::from_seed(cfg.seed);

        // Clamp finite-but-out-of-range knobs into their domains.
        let gs_mask_rad = if (0.0..=std::f64::consts::FRAC_PI_2).contains(&cfg.gs_mask_rad) {
            cfg.gs_mask_rad
        } else {
            faults.record(Fault::ClampedConfig);
            cfg.gs_mask_rad.clamp(0.0, std::f64::consts::FRAC_PI_2)
        };
        let downlink_service_s = if cfg.downlink_service_s < 0.0 {
            faults.record(Fault::ClampedConfig);
            0.0
        } else {
            cfg.downlink_service_s
        };
        if cfg.max_attempts == 0 {
            // NodeMachine::with_limits raises this to 1; make the clamp
            // visible in the accounting.
            faults.record(Fault::ClampedConfig);
        }

        // --- Constellation, farm passes, and GS contact plans. ---
        let catalog = tianqi().catalog(campaign_epoch());
        let spec = tianqi();
        let gs_sites = tianqi_ground_stations();

        // Predictors are kept for geometry sampling during the event
        // loop; the pass lists themselves come from the shared cache so
        // the 12 active-campaign configurations inside `reproduce_all`
        // predict each one exactly once. The event-loop predictors are
        // grid-backed over the farm window (sharing the farm sweep's
        // grid `Arc`s); instants outside the window fall back to direct
        // SGP4 bit-identically.
        // Build (and thereby validate) every propagator exactly once;
        // the pool closures below clone these instead of re-deriving —
        // and possibly panicking on — the raw elements.
        let mut sgp4s: Vec<Sgp4> = Vec::with_capacity(catalog.len());
        let mut predictors: Vec<PassPredictor> = Vec::with_capacity(catalog.len());
        for sat in &catalog {
            let sgp4 = sat
                .sgp4()
                .map_err(|e| SatIotError::orbit("building Tianqi farm predictors", e))?;
            let predictor = sweep::predictor_with_mode(
                opts.ephemeris,
                opts.visibility,
                opts.culling,
                GridKey::new(sat.constellation, sat.sat_id, t0, t0 + cfg.days),
                &sgp4,
                farm,
                calib::THEORETICAL_MASK_RAD,
            )
            .unwrap_or_else(|| {
                // A culled (farm, satellite) pair produces no farm
                // passes, so its event-loop predictor is never sampled;
                // a plain ungridded one keeps the index mapping intact.
                PassPredictor::new(sgp4.clone(), farm, calib::THEORETICAL_MASK_RAD)
                    .with_visibility(opts.visibility)
            });
            predictors.push(predictor);
            sgp4s.push(sgp4);
        }
        let farm_lists: Vec<Arc<Vec<Pass>>> =
            pool::parallel_map_with(&catalog, threads, |i, sat| {
                let sgp4 = sgp4s[i].clone();
                sweep::passes_for(
                    PassKey::new(
                        "YUNNAN_FARM",
                        sat.constellation,
                        sat.sat_id,
                        t0,
                        t0 + cfg.days,
                        calib::THEORETICAL_MASK_RAD,
                    ),
                    || {
                        sweep::predictor_with_mode(
                            opts.ephemeris,
                            opts.visibility,
                            opts.culling,
                            GridKey::new(sat.constellation, sat.sat_id, t0, t0 + cfg.days),
                            &sgp4,
                            farm,
                            calib::THEORETICAL_MASK_RAD,
                        )
                    },
                )
            });
        let mut farm_passes: Vec<(usize, Pass)> = Vec::new(); // (sat, pass)
        for (i, list) in farm_lists.iter().enumerate() {
            farm_passes.extend(list.iter().map(|pass| (i, *pass)));
        }
        // Healthy predictors never emit degenerate passes, but externally
        // cached or corrupted lists might; drop and count them so the
        // event schedule below can assume well-formed windows.
        farm_passes.retain(|(_, p)| {
            if !(p.aos.0.is_finite() && p.los.0.is_finite() && p.tca.0.is_finite()) {
                faults.record(Fault::NanPassTime);
                return false;
            }
            if p.duration_s() <= 0.0 {
                faults.record(Fault::DegeneratePass);
                return false;
            }
            true
        });
        farm_passes.sort_by(|a, b| a.1.aos.0.total_cmp(&b.1.aos.0));
        FARM_PASSES.add(farm_passes.len() as u64);

        // GS contact plans: one *(satellite × station)* prediction per
        // pool task (22 sats × 12 stations dominates cold setup time),
        // every list shared through the cache.
        let gs_tasks: Vec<(usize, usize)> = (0..catalog.len())
            .flat_map(|i| (0..gs_sites.len()).map(move |g| (i, g)))
            .collect();
        let gs_lists: Vec<Arc<Vec<Pass>>> =
            pool::parallel_map_with(&gs_tasks, threads, |_, &(i, g)| {
                let _shard_span = CONTACT_PLAN_SHARD_S.start();
                let sat = &catalog[i];
                let (name, gs) = gs_sites[g];
                let sgp4 = sgp4s[i].clone();
                sweep::passes_for(
                    PassKey::new(
                        name,
                        sat.constellation,
                        sat.sat_id,
                        t0,
                        t0 + cfg.days + 1.0,
                        gs_mask_rad,
                    ),
                    || {
                        sweep::predictor_with_mode(
                            opts.ephemeris,
                            opts.visibility,
                            opts.culling,
                            GridKey::new(sat.constellation, sat.sat_id, t0, t0 + cfg.days + 1.0),
                            &sgp4,
                            gs,
                            gs_mask_rad,
                        )
                    },
                )
            });
        let contact_plans: Vec<Vec<(f64, f64)>> = (0..catalog.len())
            .map(|i| {
                let mut intervals = Vec::new();
                for g in 0..gs_sites.len() {
                    for pass in gs_lists[i * gs_sites.len() + g].iter() {
                        intervals.push((pass.aos.seconds_since(t0), pass.los.seconds_since(t0)));
                    }
                }
                merge_contacts(intervals)
            })
            .collect();

        let mut sats: Vec<SatellitePayload> = contact_plans
            .into_iter()
            .enumerate()
            .map(|(i, plan)| SatellitePayload::new(i as u32, plan))
            .collect();

        // --- Weather. ---
        let weather = match cfg.weather_override {
            Some(w) => WeatherProcess::constant(w),
            None => WeatherProcess::generate(
                &Climate::Subtropical.weather_params(),
                SimTime::from_secs(horizon_s),
                &mut root.fork("weather"),
            ),
        };

        // --- Link budgets and airtimes. ---
        let beacon_cfg = LoRaConfig::dts_beacon();
        let uplink_cfg = LoRaConfig::dts_uplink();
        let downlink = LinkBudget::dts_downlink(spec.dts_frequency_mhz, cfg.node_antenna);
        let uplink = LinkBudget::dts_uplink(spec.dts_frequency_mhz, cfg.node_antenna);
        let beacon_len = Message::Beacon(Beacon::nominal(0, 0)).phy_payload_len(beacon_cfg.cr);
        let ack_len = Message::Ack(Ack { node_id: 0, seq: 0 }).phy_payload_len(beacon_cfg.cr);
        let uplink_len = Message::Uplink(Uplink {
            node_id: 0,
            seq: 0,
            data: Bytes::from(vec![0u8; cfg.payload_bytes]),
        })
        .phy_payload_len(uplink_cfg.cr);
        let beacon_airtime = airtime_s(&beacon_cfg, beacon_len);
        let ack_airtime = airtime_s(&beacon_cfg, ack_len);
        let uplink_airtime = airtime_s(&uplink_cfg, uplink_len);

        // --- Nodes and bookkeeping. ---
        // Listen plan: the operator distributes pass predictions; nodes
        // open their receivers only for passes culminating above the
        // plan threshold.
        let plan: Vec<(f64, f64)> = {
            let trim = calib::LISTEN_PLAN_TRIM_EL_DEG.to_radians();
            let mut intervals: Vec<(f64, f64)> = Vec::new();
            for (sat, p) in farm_passes.iter() {
                if p.max_elevation_rad.to_degrees() < calib::LISTEN_PLAN_MIN_MAX_EL_DEG {
                    continue;
                }
                // Trim the window to the above-threshold arc by bisecting
                // the (unimodal) elevation profile on each flank.
                let predictor = &predictors[*sat];
                let rise = bisect_elevation(predictor, p.aos, p.tca, trim, true);
                let fall = bisect_elevation(predictor, p.tca, p.los, trim, false);
                intervals.push((rise.seconds_since(t0), fall.seconds_since(t0)));
            }
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            merge_contacts(intervals)
        };
        let mut nodes: Vec<NodeMachine> = (0..cfg.nodes)
            .map(|i| {
                let mut n = NodeMachine::with_limits(i, cfg.buffer_capacity, cfg.max_attempts);
                n.listen_plan = plan.clone();
                n
            })
            .collect();
        let mut records: Vec<PacketRecord> = Vec::new();
        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut counters = ActiveCounters::default();
        let mut server = DeliveryLog::new();
        let mut rng = root.fork("events");

        // Doppler penalty under the configured compensation mode.
        let doppler_penalty = |cfg_lora: &LoRaConfig, len: usize, off: f64, rate: f64| {
            if cfg.doppler_compensation {
                compensated_penalty_db(cfg_lora, len, off, rate)
            } else {
                total_penalty_db(cfg_lora, len, off, rate)
            }
        };
        // Per-(pass, node) shadowing — a pure function of the seed so
        // event order cannot perturb it.
        let shadow = |pass: usize, node: usize, wx: Weather, budget: &LinkBudget| -> f64 {
            let mut r = root.fork_indexed("shadow", ((pass as u64) << 8) | node as u64);
            budget.draw_shadowing_db(wx, &mut r)
        };
        // Per-(pass, node) horizon severity (plantation skylines differ
        // by azimuth), also order-independent.
        let clutter = |pass: usize, node: usize| -> f64 {
            let mut r = root.fork_indexed("clutter", ((pass as u64) << 8) | node as u64);
            let (lo, hi) = calib::CLUTTER_SCALE_RANGE;
            r.uniform(lo, hi)
        };

        // --- Seed the event queue. ---
        let mut engine: Engine<Event> = Engine::new();
        for n in 0..cfg.nodes as usize {
            // Nodes boot staggered over the first minute.
            engine.schedule_at(
                SimTime::from_secs(n as f64 * 17.0),
                Event::DataGen { node: n },
            );
        }
        for (idx, (sat, pass)) in farm_passes.iter().enumerate() {
            let aos_s = pass.aos.seconds_since(t0);
            let phase = (*sat as f64 * 1.37) % spec.beacon_interval_s;
            engine.schedule_at(
                SimTime::from_secs(aos_s + phase),
                Event::BeaconTx {
                    sat: *sat,
                    pass: idx,
                    counter: 0,
                },
            );
            engine.schedule_at(
                SimTime::from_secs(pass.los.seconds_since(t0)),
                Event::PassEnd { pass: idx },
            );
        }

        // --- Main loop. ---
        let end = SimTime::from_secs(horizon_s);
        engine.run_until(end, |eng, now, event| {
            let t = now.as_secs();
            let wx = cfg.weather_override.unwrap_or_else(|| weather.at(now));
            match event {
                Event::DataGen { node } => {
                    let seq = records.len() as u64;
                    records.push(PacketRecord {
                        node: node as u32,
                        generated_s: t,
                        first_tx_s: None,
                        sat_rx_s: None,
                        delivered_s: None,
                        attempts: 0,
                        weather: wx.label(),
                    });
                    nodes[node].on_data(seq, t);
                    eng.schedule_in(cfg.period_s, Event::DataGen { node });
                }
                Event::BeaconTx { sat, pass, counter } => {
                    counters.beacons_tx += 1;
                    let (sat_idx, p) = farm_passes[pass];
                    debug_assert_eq!(sat_idx, sat);
                    let t_rx = t + beacon_airtime;
                    let when = t0.plus_seconds(t_rx);
                    if let Some(geom) =
                        sample_at(&predictors[sat], when, spec.dts_frequency_mhz * 1e6)
                    {
                        let mut heard = false;
                        #[allow(clippy::needless_range_loop)] // Index is a node id used in events.
                        for n in 0..nodes.len() {
                            // Half-duplex: a transmitting node cannot hear.
                            let busy = in_flight
                                .iter()
                                .any(|u| u.node == n && t_rx >= u.start_s && t_rx <= u.end_s);
                            if busy || !nodes[n].is_listening(t) {
                                continue;
                            }
                            let mut link = downlink;
                            link.clutter_scale = clutter(pass, n);
                            let sh = shadow(pass, n, wx, &link);
                            let s =
                                link.sample(geom.range_km, geom.elevation_rad, wx, sh, &mut rng);
                            let Some(pen) = doppler_penalty(
                                &beacon_cfg,
                                beacon_len,
                                geom.doppler_hz,
                                geom.doppler_rate_hz_s,
                            ) else {
                                continue;
                            };
                            if !packet_decodes(&beacon_cfg, beacon_len, s.snr_db - pen, &mut rng) {
                                continue;
                            }
                            heard = true;
                            let pass_end_s = p.los.seconds_since(t0);
                            match nodes[n].on_beacon(t_rx, pass_end_s) {
                                BeaconReaction::Idle => {}
                                BeaconReaction::Transmit { seq, .. } => {
                                    // A corrupted sequence number cannot
                                    // index the record table: drop the
                                    // transmission, count it, move on.
                                    let Some(rec) = records.get_mut(seq as usize) else {
                                        faults.record(Fault::CorruptSeq);
                                        continue;
                                    };
                                    // Slotted uplink inside the response
                                    // window following the beacon.
                                    let max_slot = (calib::UPLINK_RESPONSE_WINDOW_S
                                        .min(spec.beacon_interval_s)
                                        - uplink_airtime
                                        - 0.3)
                                        .max(0.1);
                                    let slot = match cfg.mac {
                                        MacPolicy::RandomSlot => rng.uniform(0.05, max_slot),
                                        MacPolicy::Tdma => {
                                            // Own a fixed fraction of the
                                            // window; nudge inside it to
                                            // absorb clock skew.
                                            let width = max_slot / cfg.nodes.max(1) as f64;
                                            0.05 + width * n as f64
                                                + rng.uniform(
                                                    0.0,
                                                    (width - uplink_airtime).clamp(0.01, 0.2),
                                                )
                                        }
                                    };
                                    let start = t_rx + slot;
                                    nodes[n].on_transmit(start, uplink_airtime);
                                    rec.attempts += 1;
                                    if rec.first_tx_s.is_none() {
                                        rec.first_tx_s = Some(start);
                                    }
                                    counters.uplinks_tx += 1;
                                    // Sample the uplink as received on orbit.
                                    let up_when = t0.plus_seconds(start);
                                    if let Some(up_geom) = sample_at(
                                        &predictors[sat],
                                        up_when,
                                        spec.dts_frequency_mhz * 1e6,
                                    ) {
                                        let mut up_link = uplink;
                                        up_link.clutter_scale = clutter(pass, n);
                                        let sh_up = shadow(pass, n, wx, &up_link);
                                        let us = up_link.sample(
                                            up_geom.range_km,
                                            up_geom.elevation_rad,
                                            wx,
                                            sh_up,
                                            &mut rng,
                                        );
                                        let pen_up = doppler_penalty(
                                            &uplink_cfg,
                                            uplink_len,
                                            up_geom.doppler_hz,
                                            up_geom.doppler_rate_hz_s,
                                        );
                                        let end_s = start + uplink_airtime;
                                        in_flight.push(InFlight {
                                            node: n,
                                            sat,
                                            seq,
                                            start_s: start,
                                            end_s,
                                            rssi_dbm: us.rssi_dbm,
                                            snr_db: us.snr_db - pen_up.unwrap_or(99.0),
                                        });
                                        eng.schedule_at(
                                            SimTime::from_secs(end_s),
                                            Event::UplinkEnd {
                                                node: n,
                                                pass,
                                                seq,
                                                start_s: start,
                                            },
                                        );
                                    }
                                    eng.schedule_at(
                                        SimTime::from_secs(
                                            start + uplink_airtime + calib::ACK_TIMEOUT_S,
                                        ),
                                        Event::AckTimeout { node: n, seq },
                                    );
                                }
                            }
                        }
                        if heard {
                            counters.beacons_heard += 1;
                        }
                    }
                    // Next beacon within the pass.
                    let next = t + spec.beacon_interval_s;
                    if next < p.los.seconds_since(t0) {
                        eng.schedule_at(
                            SimTime::from_secs(next),
                            Event::BeaconTx {
                                sat,
                                pass,
                                counter: counter + 1,
                            },
                        );
                    }
                }
                Event::UplinkEnd {
                    node,
                    pass,
                    seq,
                    start_s,
                } => {
                    // Pull this transmission out of the in-flight set.
                    let Some(pos) = in_flight.iter().position(|u| {
                        u.node == node && u.seq == seq && (u.start_s - start_s).abs() < 1e-9
                    }) else {
                        return;
                    };
                    let me = in_flight.remove(pos);
                    // Interferers: any other uplink overlapping in time at
                    // the same satellite (all on the shared DtS channel).
                    let mut others: Vec<Overlap> = in_flight
                        .iter()
                        .filter(|u| u.sat == me.sat && u.start_s < me.end_s && u.end_s > me.start_s)
                        .map(|u| Overlap {
                            rssi_dbm: u.rssi_dbm,
                            sf: uplink_cfg.sf,
                        })
                        .collect();
                    // Background traffic from the rest of the footprint:
                    // thousands of third-party devices share the channel
                    // (the paper's congestion/collision loss mechanism).
                    let bg_prob =
                        (calib::BACKGROUND_COLLISION_RATE_PER_S * uplink_airtime).min(0.9);
                    if rng.chance(bg_prob) {
                        let (lo, hi) = calib::BACKGROUND_RSSI_DBM;
                        others.push(Overlap {
                            rssi_dbm: rng.uniform(lo, hi),
                            sf: uplink_cfg.sf,
                        });
                    }
                    let effective_snr = if others.is_empty() {
                        me.snr_db
                    } else {
                        // Interference-limited SINR, preserving the fading
                        // already folded into snr_db via the noise-limited
                        // term: take the min of the two regimes.
                        let sinr = sinr_db(
                            me.rssi_dbm,
                            uplink_cfg.sf,
                            &others,
                            uplink.noise_floor_dbm(),
                        );
                        sinr.min(me.snr_db)
                    };
                    let ok = packet_decodes(&uplink_cfg, uplink_len, effective_snr, &mut rng);
                    if !ok {
                        if !others.is_empty() {
                            counters.uplinks_collided += 1;
                        }
                        return;
                    }
                    counters.uplinks_ok += 1;
                    match sats[me.sat].accept_uplink(me.node as u32, seq, t) {
                        None => { /* Satellite buffer full: no ACK. */ }
                        Some(is_new) => {
                            if !is_new {
                                counters.duplicates += 1;
                            }
                            let Some(rec) = records.get_mut(seq as usize) else {
                                // Wire-path damage: the stored sequence
                                // does not map to a generated packet.
                                faults.record(Fault::CorruptSeq);
                                return;
                            };
                            if rec.sat_rx_s.is_none() {
                                rec.sat_rx_s = Some(t);
                            }
                            // Every satellite that newly accepted this
                            // sequence forwards its own copy: the server
                            // deduplicates. Delivery queues through the
                            // satellite's shared downlink (finite contact
                            // capacity), then the operator's processing
                            // pipeline — minus its residual loss (downlink
                            // corruption / expiry).
                            if is_new && rng.chance(1.0 - calib::DELIVERY_LOSS_PROB) {
                                if let Some(done) =
                                    sats[me.sat].schedule_downlink(t, downlink_service_s)
                                {
                                    let proc = rng.exponential(calib::DELIVERY_PROCESSING_MEAN_S);
                                    let d = done + proc;
                                    server.record(seq, me.node as u32, d);
                                    rec.delivered_s = Some(match rec.delivered_s {
                                        Some(old) => old.min(d),
                                        None => d,
                                    });
                                }
                            }
                            // ACK after turnaround.
                            counters.acks_tx += 1;
                            eng.schedule_at(
                                SimTime::from_secs(t + calib::ACK_TURNAROUND_S + ack_airtime),
                                Event::AckEnd {
                                    node: me.node,
                                    seq,
                                    sat: me.sat,
                                    pass,
                                },
                            );
                        }
                    }
                }
                Event::AckEnd {
                    node,
                    seq,
                    sat,
                    pass,
                } => {
                    let when = t0.plus_seconds(t);
                    if let Some(geom) =
                        sample_at(&predictors[sat], when, spec.dts_frequency_mhz * 1e6)
                    {
                        let mut link = downlink;
                        link.clutter_scale = clutter(pass, node);
                        let sh = shadow(pass, node, wx, &link);
                        let s = link.sample(geom.range_km, geom.elevation_rad, wx, sh, &mut rng);
                        let pen = doppler_penalty(
                            &beacon_cfg,
                            ack_len,
                            geom.doppler_hz,
                            geom.doppler_rate_hz_s,
                        );
                        let snr = s.snr_db + calib::ACK_TX_POWER_DELTA_DB - pen.unwrap_or(99.0);
                        if nodes[node].is_listening(t)
                            && packet_decodes(&beacon_cfg, ack_len, snr, &mut rng)
                        {
                            counters.acks_ok += 1;
                            nodes[node].on_ack(seq, t);
                        }
                    }
                }
                Event::AckTimeout { node, seq } => {
                    nodes[node].on_ack_timeout(seq, t);
                }
                Event::PassEnd { pass } => {
                    let (_, p) = farm_passes[pass];
                    let los_s = p.los.seconds_since(t0);
                    for n in nodes.iter_mut() {
                        n.on_pass_end(los_s);
                    }
                }
            }
        });

        // --- Finalise node accounting. ---
        let mut node_energy = Vec::new();
        let mut node_drop_ratio = Vec::new();
        for node in nodes.iter_mut() {
            node.finalize(horizon_s);
            let mut acc = EnergyAccount::new();
            let profile = SatNodeProfile;
            let tx = node.tx_airtime_s;
            let rx = (node.engaged_s - tx).max(0.0) + node.plan_rx_s();
            let sleep = (horizon_s - tx - rx).max(0.0);
            acc.record(&profile, SatNodeMode::McuTx, tx);
            acc.record(&profile, SatNodeMode::McuRx, rx);
            acc.record(&profile, SatNodeMode::Sleep, sleep);
            node_energy.push(acc);
            node_drop_ratio.push(node.buffer.drop_ratio());
        }

        // --- Assemble packet-level outputs. ---
        let mut timelines = Vec::with_capacity(records.len());
        let mut sent = Vec::with_capacity(records.len());
        let mut delivered_seqs = std::collections::HashSet::new();
        let mut latency_min = MetricSketch::new(LATENCY_WIDTH_MIN);
        for (seq, rec) in records.iter().enumerate() {
            // Only count deliveries within the horizon (the paper's
            // matching window).
            let delivered_s = rec.delivered_s.filter(|d| *d <= horizon_s);
            if let Some(d) = delivered_s {
                delivered_seqs.insert(seq as u64);
                latency_min.observe((d - rec.generated_s) / 60.0);
            }
            timelines.push(PacketTimeline {
                generated_s: rec.generated_s,
                first_tx_s: rec.first_tx_s,
                sat_rx_s: rec.sat_rx_s,
                delivered_s,
            });
            sent.push(SentPacket {
                seq: seq as u64,
                node: rec.node,
                sent_s: rec.generated_s,
                payload_bytes: cfg.payload_bytes,
                attempts: rec.attempts,
                weather: rec.weather,
            });
        }
        counters.duplicates = sats.iter().map(|s| s.duplicates).sum();

        Ok(ActiveResults {
            timelines,
            latency_min,
            sent,
            delivered_seqs,
            node_energy,
            counters,
            node_drop_ratio,
            server,
            horizon_s,
            faults,
        })
    }
}

/// Reject configurations the event loop cannot run at all.
fn validate(cfg: &ActiveConfig) -> Result<(), SatIotError> {
    if !cfg.days.is_finite() {
        return Err(SatIotError::NonFiniteTime {
            context: "ActiveConfig.days",
            value: cfg.days,
        });
    }
    if cfg.days < 0.0 {
        return Err(SatIotError::InvalidConfig {
            field: "days",
            value: cfg.days,
            requirement: "finite and >= 0",
        });
    }
    if !(cfg.period_s.is_finite() && cfg.period_s > 0.0) {
        return Err(SatIotError::InvalidConfig {
            field: "period_s",
            value: cfg.period_s,
            requirement: "finite and > 0 (a zero period would stall the event loop)",
        });
    }
    if !cfg.gs_mask_rad.is_finite() {
        return Err(SatIotError::InvalidConfig {
            field: "gs_mask_rad",
            value: cfg.gs_mask_rad,
            requirement: "finite radians",
        });
    }
    if !cfg.downlink_service_s.is_finite() {
        return Err(SatIotError::InvalidConfig {
            field: "downlink_service_s",
            value: cfg.downlink_service_s,
            requirement: "finite seconds",
        });
    }
    Ok(())
}

/// Bisect the time at which the elevation crosses `threshold` between
/// `lo` and `hi`; `rising` selects the flank direction. Falls back to the
/// nearer endpoint when the whole flank is on one side.
fn bisect_elevation(
    predictor: &PassPredictor,
    mut lo: JulianDate,
    mut hi: JulianDate,
    threshold: f64,
    rising: bool,
) -> JulianDate {
    let at = |t: JulianDate| predictor.elevation_at(t);
    let (lo_above, hi_above) = (at(lo) >= threshold, at(hi) >= threshold);
    if lo_above == hi_above {
        // No crossing on this flank: the pass is entirely above (listen
        // from the endpoint) or below (degenerate — return the peak side).
        return if lo_above == rising { lo } else { hi };
    }
    for _ in 0..30 {
        if hi.seconds_since(lo) < 0.5 {
            break;
        }
        let mid = JulianDate(0.5 * (lo.0 + hi.0));
        if (at(mid) >= threshold) == lo_above {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    JulianDate(0.5 * (lo.0 + hi.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_measure::latency::LatencyBreakdown;

    #[test]
    fn bisect_elevation_finds_the_crossing() {
        use satiot_orbit::elements::Elements;
        let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let sgp4 = Elements::circular(860.0, 49.97, epoch).to_sgp4().unwrap();
        let predictor = PassPredictor::new(sgp4, yunnan_farm(), 0.0);
        let pass = predictor
            .passes(epoch, epoch + 6.0)
            .into_iter()
            .find(|p| p.max_elevation_rad.to_degrees() > 40.0)
            .expect("a high pass within six days");
        let threshold = 20.0_f64.to_radians();
        let rise = bisect_elevation(&predictor, pass.aos, pass.tca, threshold, true);
        let fall = bisect_elevation(&predictor, pass.tca, pass.los, threshold, false);
        assert!(rise > pass.aos && rise < pass.tca);
        assert!(fall > pass.tca && fall < pass.los);
        let el_rise = predictor.elevation_at(rise).to_degrees();
        let el_fall = predictor.elevation_at(fall).to_degrees();
        assert!((el_rise - 20.0).abs() < 0.3, "rise el {el_rise}");
        assert!((el_fall - 20.0).abs() < 0.3, "fall el {el_fall}");
        // A pass entirely above the threshold listens from its start.
        let low = bisect_elevation(&predictor, pass.tca, pass.tca, threshold, true);
        assert_eq!(low.0, pass.tca.0);
    }

    fn quick_results(days: f64, seed: u64) -> ActiveResults {
        let mut cfg = ActiveConfig::quick(days);
        cfg.seed = seed;
        ActiveCampaign::new(cfg)
            .run(&RunOptions::default())
            .unwrap()
    }

    #[test]
    fn campaign_moves_data_end_to_end() {
        let r = quick_results(3.0, 1);
        // 3 nodes × 48 packets/day × 3 days ≈ 432 generated.
        assert!((400..=440).contains(&r.sent.len()), "sent {}", r.sent.len());
        assert!(
            r.counters.beacons_tx > 1_000,
            "beacons {}",
            r.counters.beacons_tx
        );
        assert!(r.counters.uplinks_tx > 0);
        assert!(r.counters.uplinks_ok > 0);
        assert!(!r.delivered_seqs.is_empty(), "nothing delivered");
        let rel = r.reliability();
        assert!(rel > 0.5, "reliability {rel}");
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = quick_results(2.0, 9);
        let b = quick_results(2.0, 9);
        assert_eq!(a.sent.len(), b.sent.len());
        assert_eq!(a.delivered_seqs, b.delivered_seqs);
        assert_eq!(a.counters.uplinks_tx, b.counters.uplinks_tx);
        assert_eq!(a.counters.acks_ok, b.counters.acks_ok);
    }

    /// The streaming latency sketch must agree with the exact per-packet
    /// timelines it summarises: same delivered count, mean within float
    /// round-off, quantiles within the sketch's documented band.
    #[test]
    fn latency_sketch_matches_timelines() {
        use satiot_measure::stats::nearest_rank_sorted;
        let r = quick_results(3.0, 5);
        let mut exact: Vec<f64> = r
            .timelines
            .iter()
            .filter_map(|t| t.delivered_s.map(|d| (d - t.generated_s) / 60.0))
            .collect();
        assert!(!exact.is_empty(), "no deliveries");
        assert_eq!(r.latency_min.summary.count, exact.len() as u64);
        let mean = exact.iter().sum::<f64>() / exact.len() as f64;
        assert!((r.latency_min.summary.mean - mean).abs() < 1e-9);
        exact.sort_by(|a, b| a.total_cmp(b));
        for p in [10.0, 50.0, 90.0] {
            let est = r.latency_min.quantiles.quantile(p);
            let want = nearest_rank_sorted(&exact, p);
            assert!(
                (est - want).abs() <= r.latency_min.quantiles.width() / 2.0 + 1e-9,
                "p{p}: sketch {est} vs exact {want}"
            );
        }
    }

    #[test]
    fn latency_has_the_papers_three_segments() {
        let r = quick_results(4.0, 2);
        let b = LatencyBreakdown::compute(&r.timelines);
        assert!(b.delivered > 0);
        // Waiting for a pass dominates generation→first-tx; it must be
        // tens of minutes on average, not seconds.
        assert!(b.wait_min.mean > 5.0, "wait {}", b.wait_min.mean);
        // Delivery (GS wait + processing) is also tens of minutes.
        assert!(
            b.delivery_min.mean > 5.0,
            "delivery {}",
            b.delivery_min.mean
        );
        // End-to-end is hour-scale (paper: 135 min) — far above terrestrial.
        assert!(
            b.end_to_end_min.mean > 30.0,
            "e2e {}",
            b.end_to_end_min.mean
        );
        // Segments are consistent.
        let sum = b.wait_min.mean + b.dts_min.mean + b.delivery_min.mean;
        assert!(
            (sum - b.end_to_end_min.mean).abs() / b.end_to_end_min.mean < 0.25,
            "sum {sum} vs e2e {}",
            b.end_to_end_min.mean
        );
    }

    #[test]
    fn retransmissions_improve_reliability() {
        let mut no_retx = ActiveConfig::quick(3.0);
        no_retx.max_attempts = 1;
        no_retx.seed = 5;
        let r1 = ActiveCampaign::new(no_retx)
            .run(&RunOptions::default())
            .unwrap();
        let mut with_retx = ActiveConfig::quick(3.0);
        with_retx.max_attempts = 6;
        with_retx.seed = 5;
        let r6 = ActiveCampaign::new(with_retx)
            .run(&RunOptions::default())
            .unwrap();
        assert!(
            r6.reliability() >= r1.reliability(),
            "retx {} !>= none {}",
            r6.reliability(),
            r1.reliability()
        );
        assert!(r6.mean_attempts() >= r1.mean_attempts());
    }

    #[test]
    fn ack_loss_causes_duplicates() {
        let r = quick_results(4.0, 3);
        // The paper's observation: ACK loss triggers unnecessary
        // retransmissions, visible as duplicate receptions on orbit.
        assert!(
            r.counters.acks_tx > r.counters.acks_ok,
            "acks {} vs ok {}",
            r.counters.acks_tx,
            r.counters.acks_ok
        );
        assert!(r.counters.duplicates > 0, "no duplicates observed");
    }

    #[test]
    fn energy_has_all_three_modes() {
        let r = quick_results(2.0, 4);
        for acc in &r.node_energy {
            assert!(acc.time_s(SatNodeMode::Sleep) > 0.0);
            assert!(acc.time_s(SatNodeMode::McuRx) > 0.0);
            assert!(acc.time_s(SatNodeMode::McuTx) > 0.0);
            // Residency sums to the horizon.
            assert!((acc.total_time_s() - r.horizon_s).abs() < 1.0);
            // Rx dominates radio time (the paper's §3.2 finding).
            assert!(acc.time_s(SatNodeMode::McuRx) > acc.time_s(SatNodeMode::McuTx));
        }
    }

    #[test]
    fn degenerate_configs_are_rejected_with_typed_errors() {
        let mut cfg = ActiveConfig::quick(1.0);
        cfg.period_s = 0.0;
        assert!(matches!(
            ActiveCampaign::new(cfg)
                .run(&RunOptions::default())
                .unwrap_err(),
            SatIotError::InvalidConfig {
                field: "period_s",
                ..
            }
        ));
        let mut cfg = ActiveConfig::quick(f64::NAN);
        cfg.seed = 1;
        assert!(matches!(
            ActiveCampaign::new(cfg)
                .run(&RunOptions::default())
                .unwrap_err(),
            SatIotError::NonFiniteTime {
                context: "ActiveConfig.days",
                ..
            }
        ));
        let mut cfg = ActiveConfig::quick(1.0);
        cfg.gs_mask_rad = f64::INFINITY;
        assert!(matches!(
            ActiveCampaign::new(cfg)
                .run(&RunOptions::default())
                .unwrap_err(),
            SatIotError::InvalidConfig {
                field: "gs_mask_rad",
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_configs_are_clamped_and_counted() {
        let mut cfg = ActiveConfig::quick(0.5);
        cfg.gs_mask_rad = 2.0; // Above zenith.
        cfg.downlink_service_s = -3.0;
        cfg.max_attempts = 0;
        let r = ActiveCampaign::new(cfg)
            .run(&RunOptions::default())
            .unwrap();
        assert_eq!(r.faults.clamped_configs, 3, "{}", r.faults);
        // The campaign still ran to its horizon.
        assert!((r.horizon_s - 0.5 * 86_400.0).abs() < 1e-6);
    }

    #[test]
    fn zero_nodes_run_to_an_empty_campaign() {
        let mut cfg = ActiveConfig::quick(0.5);
        cfg.nodes = 0;
        let r = ActiveCampaign::new(cfg)
            .run(&RunOptions::default())
            .unwrap();
        assert!(r.sent.is_empty());
        assert!(r.delivered_seqs.is_empty());
        assert!(r.node_energy.is_empty());
    }

    #[test]
    fn better_antenna_needs_fewer_attempts() {
        let mut quarter = ActiveConfig::quick(3.0);
        quarter.node_antenna = AntennaPattern::QuarterWaveMonopole;
        quarter.seed = 11;
        let rq = ActiveCampaign::new(quarter)
            .run(&RunOptions::default())
            .unwrap();
        let mut five8 = ActiveConfig::quick(3.0);
        five8.node_antenna = AntennaPattern::FiveEighthsWaveMonopole;
        five8.seed = 11;
        let rf = ActiveCampaign::new(five8)
            .run(&RunOptions::default())
            .unwrap();
        assert!(
            rf.mean_attempts() <= rq.mean_attempts() + 0.05,
            "5/8 {} vs 1/4 {}",
            rf.mean_attempts(),
            rq.mean_attempts()
        );
    }
}
