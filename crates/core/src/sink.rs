//! Pluggable trace sinks: where the simulate phase's decoded beacons go.
//!
//! The paper's passive dataset is ~122 k traces over seven months; a
//! month-long, mega-constellation campaign produces orders of magnitude
//! more than fits in RAM. Instead of materialising every
//! [`BeaconTrace`] in a `Vec`, each per-site simulate shard now owns a
//! [`TraceSink`] shard selected by [`SinkMode`] (the
//! [`crate::options::RunOptions::sink`] knob, `SATIOT_SINK`):
//!
//! * [`SinkMode::Full`] (the default) — retain every trace in the
//!   result's `TraceSet`, exactly as before this module existed. The
//!   `reproduce_all` figure binaries need the raw traces, and every
//!   historical output stays bit-identical.
//! * [`SinkMode::Aggregate`] — retain **no** traces; fold each one into
//!   the mergeable streaming sketches of
//!   [`satiot_measure::sketch::TraceAggregate`]. Memory is O(sites ×
//!   constellations), not O(traces).
//! * [`SinkMode::Null`] — drop every trace (pure-driver benchmarks).
//! * [`SinkMode::SpillCsv`] / [`SinkMode::SpillJsonl`] — stream each
//!   trace to disk through `satiot_measure::csv` and retain none. Each
//!   site shard writes its own `.part<idx>` file; after the in-order
//!   merge, [`finalize_spill`] concatenates the parts in site order, so
//!   the archive on disk is byte-identical to what
//!   [`satiot_measure::csv::write_traces`] would have produced from the
//!   full-trace run, regardless of thread count.
//!
//! Every sink also feeds the streaming sketches (except [`Null`]), so
//! sketch-vs-exact comparisons can run from a single campaign. Shards
//! merge in configuration order — sketch merges included — keeping the
//! serial, pooled, and legacy drivers bit-identical (the invariant
//! `determinism_smoke` pins).
//!
//! Accounting is proof-carrying: the `measure.sink.traces_emitted`,
//! `measure.sink.traces_retained`, and `measure.sink.traces_spilled`
//! obs counters (and the per-run [`SinkStats`]) let CI *assert* that a
//! bounded-memory mode retained zero traces rather than trusting it.
//! Spill IO failures degrade the shard to null behaviour and are
//! counted as [`Fault::SinkIo`](crate::error::Fault::SinkIo) — a
//! campaign never panics because a disk filled up.
//!
//! [`Null`]: SinkMode::Null

use satiot_measure::csv;
use satiot_measure::sketch::TraceAggregate;
use satiot_measure::trace::{BeaconTrace, TraceSet};
use satiot_obs::metrics::Counter;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// Traces handed to any sink by the simulate phase (metrics).
static TRACES_EMITTED: Counter = Counter::new("measure.sink.traces_emitted");
/// Traces retained in RAM after the sink finished (metrics).
static TRACES_RETAINED: Counter = Counter::new("measure.sink.traces_retained");
/// Traces streamed to a spill file (metrics).
static TRACES_SPILLED: Counter = Counter::new("measure.sink.traces_spilled");

/// Which sink the simulate phase routes decoded beacons into.
///
/// Spill paths are `&'static str` so the mode (and
/// [`crate::options::RunOptions`] around it) stays `Copy`; the env
/// parser leaks the one configured path per process, and programmatic
/// callers pass string literals or leaked strings the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SinkMode {
    /// Keep every trace in RAM (`TraceSet`), plus the sketches.
    #[default]
    Full,
    /// Keep only the streaming sketches; retain no traces.
    Aggregate,
    /// Drop everything (pure-driver benchmarks).
    Null,
    /// Stream traces to a CSV archive at `path`; retain none.
    SpillCsv {
        /// Final archive path (shards write `<path>.part<idx>`).
        path: &'static str,
    },
    /// Stream traces to a JSONL archive at `path`; retain none.
    SpillJsonl {
        /// Final archive path (shards write `<path>.part<idx>`).
        path: &'static str,
    },
}

impl SinkMode {
    /// Build this mode's per-site sink shard. `site_idx` is the site's
    /// configuration index — it names spill part files, so the final
    /// concatenation happens in site order.
    pub fn shard(self, site_idx: usize) -> Box<dyn TraceSink + Send> {
        match self {
            SinkMode::Full => Box::new(FullSink::default()),
            SinkMode::Aggregate => Box::new(AggregatingSink::default()),
            SinkMode::Null => Box::new(NullSink::default()),
            SinkMode::SpillCsv { path } => {
                Box::new(SpillSink::open(path, site_idx, SpillFormat::Csv))
            }
            SinkMode::SpillJsonl { path } => {
                Box::new(SpillSink::open(path, site_idx, SpillFormat::Jsonl))
            }
        }
    }
}

/// Per-run sink accounting, merged per site in configuration order and
/// mirrored into the `measure.sink.*` obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Traces the simulate phase handed to the sink.
    pub emitted: u64,
    /// Traces still held in RAM when the sink finished.
    pub retained: u64,
    /// Traces streamed to a spill file.
    pub spilled: u64,
}

impl SinkStats {
    /// Fold another shard's accounting into this one.
    pub fn merge(&mut self, other: &SinkStats) {
        self.emitted += other.emitted;
        self.retained += other.retained;
        self.spilled += other.spilled;
    }
}

/// One shard's spill output, pending final concatenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillPart {
    /// The final archive path every shard of this run targets.
    pub path: &'static str,
    /// This shard's part file.
    pub part: PathBuf,
    /// Archive format.
    pub format: SpillFormat,
}

/// On-disk format of a spill archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillFormat {
    /// `satiot_measure::csv` rows under the standard header.
    Csv,
    /// One flat JSON object per line.
    Jsonl,
}

/// What a finished sink hands back to the campaign driver. Plain data —
/// no file handles — so campaign results stay `Clone`.
#[derive(Debug, Clone, Default)]
pub struct SinkOutput {
    /// Retained traces (non-empty only for [`SinkMode::Full`]).
    pub traces: TraceSet,
    /// Streaming sketches (absent only for [`SinkMode::Null`]).
    pub sketch: Option<TraceAggregate>,
    /// This shard's accounting.
    pub stats: SinkStats,
    /// Spill part awaiting [`finalize_spill`], if this was a spill sink.
    pub spill: Option<SpillPart>,
    /// Spill IO failures survived (the shard degraded to null behaviour).
    pub io_errors: u64,
}

/// Where the simulate phase's decoded beacons flow.
///
/// One shard exists per site; [`TraceSink::finish`] converts the shard
/// into plain mergeable data and publishes its accounting to the
/// `measure.sink.*` counters.
pub trait TraceSink {
    /// Accept one decoded beacon.
    fn record(&mut self, trace: BeaconTrace);

    /// Consume the sink, returning retained data and accounting.
    fn finish(self: Box<Self>) -> SinkOutput;
}

/// Publish a finished shard's stats to the process-wide counters.
fn publish(stats: &SinkStats) {
    TRACES_EMITTED.add(stats.emitted);
    TRACES_RETAINED.add(stats.retained);
    TRACES_SPILLED.add(stats.spilled);
}

/// The opt-in full-trace sink: today's behaviour, bit-for-bit.
#[derive(Debug, Default)]
struct FullSink {
    traces: TraceSet,
    sketch: TraceAggregate,
}

impl TraceSink for FullSink {
    fn record(&mut self, trace: BeaconTrace) {
        self.sketch.observe(&trace);
        self.traces.push(trace);
    }

    fn finish(self: Box<Self>) -> SinkOutput {
        let stats = SinkStats {
            emitted: self.traces.len() as u64,
            retained: self.traces.len() as u64,
            spilled: 0,
        };
        publish(&stats);
        SinkOutput {
            traces: self.traces,
            sketch: Some(self.sketch),
            stats,
            spill: None,
            io_errors: 0,
        }
    }
}

/// The bounded-memory sink: sketches only, O(constellations) per shard.
#[derive(Debug, Default)]
struct AggregatingSink {
    sketch: TraceAggregate,
}

impl TraceSink for AggregatingSink {
    fn record(&mut self, trace: BeaconTrace) {
        self.sketch.observe(&trace);
    }

    fn finish(self: Box<Self>) -> SinkOutput {
        let stats = SinkStats {
            emitted: self.sketch.total,
            retained: 0,
            spilled: 0,
        };
        publish(&stats);
        SinkOutput {
            traces: TraceSet::new(),
            sketch: Some(self.sketch),
            stats,
            spill: None,
            io_errors: 0,
        }
    }
}

/// The do-nothing sink (driver-overhead benchmarks).
#[derive(Debug, Default)]
struct NullSink {
    emitted: u64,
}

impl TraceSink for NullSink {
    fn record(&mut self, _trace: BeaconTrace) {
        self.emitted += 1;
    }

    fn finish(self: Box<Self>) -> SinkOutput {
        let stats = SinkStats {
            emitted: self.emitted,
            retained: 0,
            spilled: 0,
        };
        publish(&stats);
        SinkOutput {
            traces: TraceSet::new(),
            sketch: None,
            stats,
            spill: None,
            io_errors: 0,
        }
    }
}

/// The disk-spill sink: streams rows to `<path>.part<idx>`, keeps the
/// sketches, and retains nothing in RAM. An IO failure (open or write)
/// degrades the shard to null behaviour — further rows are counted but
/// not written — and surfaces through `SinkOutput::io_errors`.
struct SpillSink {
    path: &'static str,
    part: PathBuf,
    format: SpillFormat,
    writer: Option<BufWriter<File>>,
    sketch: TraceAggregate,
    emitted: u64,
    spilled: u64,
    io_errors: u64,
}

impl SpillSink {
    fn open(path: &'static str, site_idx: usize, format: SpillFormat) -> SpillSink {
        let part = PathBuf::from(format!("{path}.part{site_idx}"));
        let (writer, io_errors) = match File::create(&part) {
            Ok(f) => (Some(BufWriter::new(f)), 0),
            Err(_) => (None, 1),
        };
        SpillSink {
            path,
            part,
            format,
            writer,
            sketch: TraceAggregate::default(),
            emitted: 0,
            spilled: 0,
            io_errors,
        }
    }
}

impl TraceSink for SpillSink {
    fn record(&mut self, trace: BeaconTrace) {
        self.emitted += 1;
        self.sketch.observe(&trace);
        if let Some(w) = self.writer.as_mut() {
            let res = match self.format {
                SpillFormat::Csv => csv::write_trace_row(w, &trace),
                SpillFormat::Jsonl => csv::write_trace_jsonl(w, &trace),
            };
            match res {
                Ok(()) => self.spilled += 1,
                Err(_) => {
                    self.io_errors += 1;
                    self.writer = None;
                }
            }
        }
    }

    fn finish(mut self: Box<Self>) -> SinkOutput {
        if let Some(mut w) = self.writer.take() {
            if w.flush().is_err() {
                self.io_errors += 1;
                self.writer = None;
            }
        }
        let stats = SinkStats {
            emitted: self.emitted,
            retained: 0,
            spilled: self.spilled,
        };
        publish(&stats);
        SinkOutput {
            traces: TraceSet::new(),
            sketch: Some(self.sketch),
            stats,
            spill: Some(SpillPart {
                path: self.path,
                part: self.part,
                format: self.format,
            }),
            io_errors: self.io_errors,
        }
    }
}

/// Concatenate spill parts (already in site order — the campaign merge
/// collects them in configuration order) into the final archive: the
/// CSV header once, then each part's bytes, deleting parts as they are
/// consumed. Returns the number of IO errors survived; on error the
/// partial archive is left behind rather than panicking.
pub fn finalize_spill(parts: &[SpillPart]) -> u64 {
    let Some(first) = parts.first() else {
        return 0;
    };
    let mut io_errors = 0u64;
    let mut out = match File::create(first.path) {
        Ok(f) => BufWriter::new(f),
        Err(_) => return parts.len() as u64,
    };
    if first.format == SpillFormat::Csv && writeln!(out, "{}", csv::HEADER).is_err() {
        io_errors += 1;
    }
    for part in parts {
        match std::fs::read(&part.part) {
            Ok(bytes) => {
                if out.write_all(&bytes).is_err() {
                    io_errors += 1;
                }
            }
            Err(_) => io_errors += 1,
        }
        if std::fs::remove_file(&part.part).is_err() {
            io_errors += 1;
        }
    }
    if out.flush().is_err() {
        io_errors += 1;
    }
    io_errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(i: u32, constellation: &str) -> BeaconTrace {
        BeaconTrace {
            time_s: i as f64 * 10.0,
            site: "HK".to_string(),
            station: i % 3,
            constellation: constellation.to_string(),
            sat_id: i,
            rssi_dbm: -120.0 - (i % 7) as f64,
            snr_db: -6.0,
            elevation_deg: 20.0 + i as f64,
            distance_km: 1_000.0 + i as f64,
            doppler_hz: 2_000.0,
            weather: "sunny",
        }
    }

    #[test]
    fn full_sink_retains_everything_and_sketches() {
        let mut sink = SinkMode::Full.shard(0);
        for i in 0..10 {
            sink.record(trace(i, "Tianqi"));
        }
        let out = sink.finish();
        assert_eq!(out.traces.len(), 10);
        assert_eq!(out.stats.emitted, 10);
        assert_eq!(out.stats.retained, 10);
        assert_eq!(out.stats.spilled, 0);
        let sketch = out.sketch.expect("full sink sketches too");
        assert_eq!(sketch.total, 10);
    }

    #[test]
    fn aggregating_sink_retains_nothing() {
        let mut sink = SinkMode::Aggregate.shard(0);
        for i in 0..25 {
            sink.record(trace(i, if i % 2 == 0 { "Tianqi" } else { "FOSSA" }));
        }
        let out = sink.finish();
        assert!(out.traces.is_empty());
        assert_eq!(out.stats.emitted, 25);
        assert_eq!(out.stats.retained, 0);
        let sketch = out.sketch.expect("aggregate keeps sketches");
        assert_eq!(sketch.total, 25);
        assert!(sketch.constellation("Tianqi").is_some());
        assert!(sketch.constellation("FOSSA").is_some());
    }

    #[test]
    fn null_sink_only_counts() {
        let mut sink = SinkMode::Null.shard(0);
        for i in 0..5 {
            sink.record(trace(i, "Tianqi"));
        }
        let out = sink.finish();
        assert!(out.traces.is_empty());
        assert!(out.sketch.is_none());
        assert_eq!(out.stats.emitted, 5);
        assert_eq!(out.stats.retained, 0);
    }

    #[test]
    fn spill_sinks_round_trip_through_finalize() {
        for format in [SpillFormat::Csv, SpillFormat::Jsonl] {
            let path: &'static str = Box::leak(
                format!(
                    "{}/satiot_sink_test_{:?}_{}.archive",
                    std::env::temp_dir().display(),
                    format,
                    std::process::id()
                )
                .into_boxed_str(),
            );
            let mode = match format {
                SpillFormat::Csv => SinkMode::SpillCsv { path },
                SpillFormat::Jsonl => SinkMode::SpillJsonl { path },
            };
            // Two shards, finished out of order; parts concatenate in
            // site order regardless.
            let mut parts = Vec::new();
            let mut stats = SinkStats::default();
            for shard_idx in [1usize, 0] {
                let mut sink = mode.shard(shard_idx);
                for i in 0..4u32 {
                    sink.record(trace(shard_idx as u32 * 100 + i, "Tianqi"));
                }
                let out = sink.finish();
                assert!(out.traces.is_empty());
                assert_eq!(out.io_errors, 0);
                stats.merge(&out.stats);
                parts.push(out.spill.expect("spill part"));
            }
            parts.sort_by_key(|p| p.part.clone());
            assert_eq!(finalize_spill(&parts), 0);
            assert_eq!(stats.emitted, 8);
            assert_eq!(stats.spilled, 8);
            assert_eq!(stats.retained, 0);

            let file = std::fs::File::open(path).expect("final archive exists");
            let reader = std::io::BufReader::new(file);
            let set = match format {
                SpillFormat::Csv => csv::read_traces(reader).expect("valid csv"),
                SpillFormat::Jsonl => csv::read_traces_jsonl(reader).expect("valid jsonl"),
            };
            assert_eq!(set.len(), 8);
            // Site order: shard 0's traces first.
            assert_eq!(set.traces[0].sat_id, 0);
            assert_eq!(set.traces[4].sat_id, 100);
            // Parts are cleaned up.
            assert!(!parts[0].part.exists());
            assert!(!parts[1].part.exists());
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn spill_to_unwritable_path_degrades_not_panics() {
        let mut sink = SinkMode::SpillCsv {
            path: "/nonexistent-dir/definitely/not/here.csv",
        }
        .shard(0);
        for i in 0..3 {
            sink.record(trace(i, "Tianqi"));
        }
        let out = sink.finish();
        assert!(out.io_errors >= 1);
        assert_eq!(out.stats.emitted, 3);
        assert_eq!(out.stats.spilled, 0);
        // The sketches still aggregated despite the dead disk.
        assert_eq!(out.sketch.expect("sketch survives").total, 3);
    }

    #[test]
    fn sink_stats_merge_adds() {
        let mut a = SinkStats {
            emitted: 5,
            retained: 5,
            spilled: 0,
        };
        a.merge(&SinkStats {
            emitted: 7,
            retained: 0,
            spilled: 7,
        });
        assert_eq!(a.emitted, 12);
        assert_eq!(a.retained, 5);
        assert_eq!(a.spilled, 7);
    }
}
