//! The satellite payload: uplink acceptance, store-and-forward, and
//! delivery scheduling against its ground-station contact plan.

use crate::buffer::{DropPolicy, StoreAndForward};
use crate::calib;
use std::collections::HashSet;

/// A packet held on orbit awaiting a ground-station contact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbitPacket {
    /// Originating node.
    pub node_id: u32,
    /// Application sequence ID.
    pub seq: u64,
    /// Time the satellite accepted the uplink, s.
    pub accepted_s: f64,
}

/// Satellite payload state.
#[derive(Debug)]
pub struct SatellitePayload {
    /// Satellite identifier.
    pub sat_id: u32,
    /// On-board packet store.
    pub buffer: StoreAndForward<OrbitPacket>,
    /// Sequences already accepted (duplicate uplinks — retransmissions
    /// whose ACK was lost — are re-ACKed but not re-stored).
    seen: HashSet<u64>,
    /// Ground-station contact intervals `(start_s, end_s)`, sorted,
    /// non-overlapping (merged across the operator's 12 stations).
    gs_contacts: Vec<(f64, f64)>,
    /// Duplicate uplinks received (ACK-loss indicator).
    pub duplicates: u64,
    /// Time at which the downlink transmitter is next free, s.
    downlink_free_s: f64,
}

impl SatellitePayload {
    /// A payload with the given merged ground-station contact plan.
    pub fn new(sat_id: u32, gs_contacts: Vec<(f64, f64)>) -> SatellitePayload {
        debug_assert!(
            gs_contacts.windows(2).all(|w| w[0].1 <= w[1].0),
            "contacts must be sorted and non-overlapping"
        );
        SatellitePayload {
            sat_id,
            buffer: StoreAndForward::new(calib::SATELLITE_BUFFER_CAPACITY, DropPolicy::DropNewest),
            seen: HashSet::new(),
            gs_contacts,
            duplicates: 0,
            downlink_free_s: 0.0,
        }
    }

    /// Accept an uplink at `t`. Returns `true` if this sequence is new
    /// (stored), `false` for a duplicate (re-ACK only). A full buffer
    /// rejects new packets entirely (no ACK — congestion loss).
    pub fn accept_uplink(&mut self, node_id: u32, seq: u64, t: f64) -> Option<bool> {
        if self.seen.contains(&seq) {
            self.duplicates += 1;
            return Some(false);
        }
        let pkt = OrbitPacket {
            node_id,
            seq,
            accepted_s: t,
        };
        if self.buffer.push(pkt).is_some() {
            // Tail-dropped: satellite resource exhaustion.
            return None;
        }
        self.seen.insert(seq);
        Some(true)
    }

    /// Earliest time ≥ `t` at which the satellite is in contact with a
    /// ground station (start of downlink opportunity), or `None` if no
    /// contact remains in the plan.
    pub fn next_contact_s(&self, t: f64) -> Option<f64> {
        let idx = self.gs_contacts.partition_point(|&(_, end)| end < t);
        self.gs_contacts.get(idx).map(|&(start, _)| start.max(t))
    }

    /// Schedule one packet through the shared downlink: the packet becomes
    /// ready at `t`, waits for a ground-station contact AND for the
    /// downlink to be free, then occupies it for `service_s` seconds of
    /// *contact* time (service suspends between contacts). Returns the
    /// downlink completion time, or `None` if the contact plan runs out.
    ///
    /// This models the L2D2-style contact-capacity constraint: a
    /// satellite's buffered backlog drains at a finite rate only while a
    /// station is in view, so congested satellites deliver late — the
    /// mechanism behind `exp_ablation_downlink`.
    pub fn schedule_downlink(&mut self, t: f64, service_s: f64) -> Option<f64> {
        let start = self.next_contact_s(t.max(self.downlink_free_s))?;
        let finish = self.advance_through_contacts(start, service_s)?;
        self.downlink_free_s = finish;
        Some(finish)
    }

    /// Advance `service_s` seconds of contact time starting at `from`
    /// (which must lie inside or before a contact).
    fn advance_through_contacts(&self, from: f64, mut service_s: f64) -> Option<f64> {
        let mut idx = self.gs_contacts.partition_point(|&(_, end)| end < from);
        let mut cursor = from;
        while let Some(&(start, end)) = self.gs_contacts.get(idx) {
            let begin = cursor.max(start);
            let available = end - begin;
            if available >= service_s {
                return Some(begin + service_s);
            }
            service_s -= available.max(0.0);
            idx += 1;
            cursor = self.gs_contacts.get(idx).map(|&(s, _)| s)?;
        }
        None
    }

    /// The delivery base time for a packet accepted at `t`: immediately
    /// if inside a contact, else the next contact start.
    pub fn delivery_base_s(&self, t: f64) -> Option<f64> {
        self.next_contact_s(t)
    }

    /// Fraction of the plan's horizon spent in ground-station contact.
    pub fn contact_fraction(&self, horizon_s: f64) -> f64 {
        if horizon_s <= 0.0 {
            return 0.0;
        }
        let covered: f64 = self
            .gs_contacts
            .iter()
            .map(|&(s, e)| (e.min(horizon_s) - s.max(0.0)).max(0.0))
            .sum();
        covered / horizon_s
    }
}

/// Merge per-station contact interval lists into one sorted,
/// non-overlapping plan.
pub fn merge_contacts(mut intervals: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> SatellitePayload {
        SatellitePayload::new(0, vec![(100.0, 200.0), (1_000.0, 1_100.0)])
    }

    #[test]
    fn accepts_new_and_flags_duplicates() {
        let mut sat = payload();
        assert_eq!(sat.accept_uplink(1, 42, 50.0), Some(true));
        assert_eq!(sat.accept_uplink(1, 42, 60.0), Some(false));
        assert_eq!(sat.duplicates, 1);
        assert_eq!(sat.buffer.len(), 1);
    }

    #[test]
    fn next_contact_lookup() {
        let sat = payload();
        assert_eq!(sat.next_contact_s(0.0), Some(100.0));
        assert_eq!(sat.next_contact_s(150.0), Some(150.0)); // Inside a contact.
        assert_eq!(sat.next_contact_s(200.0), Some(200.0)); // At the boundary.
        assert_eq!(sat.next_contact_s(201.0), Some(1_000.0));
        assert_eq!(sat.next_contact_s(2_000.0), None);
    }

    #[test]
    fn delivery_base_is_contact_gated() {
        let sat = payload();
        assert_eq!(sat.delivery_base_s(50.0), Some(100.0));
        assert_eq!(sat.delivery_base_s(120.0), Some(120.0));
    }

    #[test]
    fn full_buffer_rejects() {
        let mut sat = SatellitePayload::new(0, vec![]);
        sat.buffer = StoreAndForward::new(2, DropPolicy::DropNewest);
        assert_eq!(sat.accept_uplink(0, 1, 0.0), Some(true));
        assert_eq!(sat.accept_uplink(0, 2, 1.0), Some(true));
        assert_eq!(sat.accept_uplink(0, 3, 2.0), None);
        // The rejected sequence can be accepted later once space frees.
        sat.buffer.pop();
        assert_eq!(sat.accept_uplink(0, 3, 3.0), Some(true));
    }

    #[test]
    fn contact_fraction() {
        let sat = payload();
        // 100 + 100 s of contact in a 2 000 s horizon.
        assert!((sat.contact_fraction(2_000.0) - 0.1).abs() < 1e-12);
        assert_eq!(sat.contact_fraction(0.0), 0.0);
    }

    #[test]
    fn downlink_services_within_one_contact() {
        let mut sat = payload();
        // Ready at t=0, contact opens at 100: 10 s of service → done 110.
        assert_eq!(sat.schedule_downlink(0.0, 10.0), Some(110.0));
        // Next packet queues behind: 110 → 120.
        assert_eq!(sat.schedule_downlink(0.0, 10.0), Some(120.0));
        // A packet ready mid-contact starts immediately after the queue.
        assert_eq!(sat.schedule_downlink(115.0, 5.0), Some(125.0));
    }

    #[test]
    fn downlink_spills_into_the_next_contact() {
        let mut sat = payload();
        // 150 s of service, but the first contact only offers 100 s:
        // 100 s drain in [100, 200], the remaining 50 s in [1000, 1050].
        assert_eq!(sat.schedule_downlink(0.0, 150.0), Some(1_050.0));
        // The queue carried over: next packet starts at 1 050.
        assert_eq!(sat.schedule_downlink(0.0, 25.0), Some(1_075.0));
    }

    #[test]
    fn downlink_exhausts_the_plan() {
        let mut sat = payload();
        // More service time than all remaining contacts offer.
        assert_eq!(sat.schedule_downlink(0.0, 1_000.0), None);
        // Ready after every contact has passed.
        let mut sat = payload();
        assert_eq!(sat.schedule_downlink(5_000.0, 1.0), None);
    }

    #[test]
    fn zero_service_completes_at_contact_start() {
        let mut sat = payload();
        assert_eq!(sat.schedule_downlink(0.0, 0.0), Some(100.0));
    }

    #[test]
    fn merge_contacts_unions_overlaps() {
        let merged = merge_contacts(vec![
            (100.0, 200.0),
            (150.0, 250.0),
            (400.0, 500.0),
            (90.0, 120.0),
        ]);
        assert_eq!(merged, vec![(90.0, 250.0), (400.0, 500.0)]);
        assert!(merge_contacts(vec![]).is_empty());
    }
}
