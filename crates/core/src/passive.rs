//! The passive measurement campaign (paper §2.2 / §3.1).
//!
//! 27 TinyGS-style stations across 8 sites listen to the 39 satellites of
//! four constellations for up to seven months. The driver:
//!
//! 1. predicts every pass of every satellite over every site (SGP4),
//! 2. assigns stations to passes with the configured scheduler,
//! 3. walks the beacon emissions inside each covered interval, samples
//!    the link (geometry → budget → fading → Doppler → PER), and
//! 4. logs a [`BeaconTrace`] per decoded beacon plus per-pass
//!    [`EffectiveWindow`] records.
//!
//! The driver runs in two phases. The *predict* phase shards one task
//! per *(site × satellite)* pair across the `satiot_sim::pool` work
//! queue, each task resolving its pass list through the process-wide
//! [`crate::sweep`] cache (so re-runs — ablations, determinism checks,
//! repeated campaigns in one binary — never predict the same list
//! twice). The *simulate* phase then replays each site on its own
//! forked RNG stream; results merge in site order, so a campaign is
//! bit-for-bit reproducible regardless of thread count or scheduling.
//!
//! Inside the simulate phase, each covered pass first runs a *listen
//! prepass* shared by both kernels: the deterministic coverage gates
//! plus the stochastic listen-efficiency gate, drawn in emission order,
//! yielding the pass's heard emissions. The batched path then evaluates
//! those in three steps (see [`crate::options::BatchMode`]): a *gather*
//! step collects each heard emission's geometry into a reusable
//! structure-of-arrays arena, a *kernel* step runs the chunked
//! [`satiot_channel::batch`] kernels and the Doppler-penalty table over
//! the arena's columns, and a *scatter* step walks the arena in emission
//! order consuming the pass RNG stream in exactly the scalar order
//! (fading draws, then the decode draw). `SATIOT_BATCH=0` restores the
//! element-at-a-time path; the two are bit-identical, which
//! `determinism_smoke` pins.

use crate::calib;
use crate::error::{Fault, FaultLog, SatIotError};
use crate::geometry::{beacon_times, sample_at, GeometrySample};
use crate::options::{BatchMode, RunOptions};
use crate::scheduler::{CandidatePass, Coverage, PredictiveScheduler, Scheduler, VanillaScheduler};
use crate::sink::{self, SinkStats, SpillPart};
use crate::station::{AvailabilityParams, StationAvailability};
use crate::sweep::{self, GridKey, PassKey};
use satiot_channel::antenna::AntennaPattern;
use satiot_channel::batch::ChannelBatch;
use satiot_channel::budget::LinkBudget;
use satiot_channel::weather::WeatherProcess;
use satiot_measure::contact::{ContactStats, EffectiveWindow, TheoreticalWindow};
use satiot_measure::sketch::TraceAggregate;
use satiot_measure::trace::{BeaconTrace, TraceSet};
use satiot_obs::metrics::{Counter, Timer};
use satiot_orbit::cull::CullingMode;
use satiot_orbit::ephemeris::EphemerisMode;
use satiot_orbit::pass::{Pass, PassPredictor};
use satiot_orbit::sgp4::Sgp4;
use satiot_orbit::time::JulianDate;
use satiot_orbit::visibility::VisibilityMode;
use satiot_phy::doppler::total_penalty_db;
use satiot_phy::params::LoRaConfig;
use satiot_phy::per::packet_decodes;
use satiot_scenarios::constellations::{all_constellations, ConstellationSpec};
use satiot_scenarios::sites::{campaign_epoch, Site};
use satiot_sim::{pool, Rng, SimTime};
use std::sync::Arc;

/// Candidate passes predicted across all sites and satellites (metrics).
static PASSES_PREDICTED: Counter = Counter::new("core.passive.passes_predicted");
/// Beacons transmitted inside predicted windows (metrics).
static BEACONS_EMITTED: Counter = Counter::new("core.passive.beacons_emitted");
/// Beacons that survived the link, Doppler, and PER draws (metrics).
static BEACONS_DECODED: Counter = Counter::new("core.passive.beacons_decoded");
/// Wall-clock seconds each per-site shard took (metrics).
static SITE_SHARD_S: Timer = Timer::new("core.passive.site_shard_s");

/// Which station-assignment policy a campaign uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// The paper's customised predictive scheduler.
    Predictive,
    /// Vanilla TinyGS rotation with the given dwell.
    Vanilla {
        /// Seconds per rotation slot.
        dwell_s: f64,
    },
}

/// Passive-campaign configuration.
#[derive(Debug, Clone)]
pub struct PassiveConfig {
    /// Root seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Cap on per-site simulated days (the full campaign runs each site
    /// from its Table 1 start date to 2025-04; tests use a few days).
    pub max_days: f64,
    /// Station-assignment policy.
    pub scheduler: SchedulerKind,
    /// Sites to simulate.
    pub sites: Vec<Site>,
    /// Constellations to observe.
    pub constellations: Vec<ConstellationSpec>,
    /// Ground-station antenna.
    pub ground_antenna: AntennaPattern,
    /// Shard sites across threads.
    pub parallel: bool,
}

impl Default for PassiveConfig {
    /// The full seven-month, eight-site, four-constellation campaign.
    fn default() -> Self {
        PassiveConfig {
            seed: 0x5A7_107,
            max_days: f64::INFINITY,
            scheduler: SchedulerKind::Predictive,
            sites: satiot_scenarios::sites::measurement_sites(),
            constellations: all_constellations(),
            ground_antenna: AntennaPattern::QuarterWaveMonopole,
            parallel: true,
        }
    }
}

impl PassiveConfig {
    /// A truncated campaign (first `days` days per site) for tests and
    /// quick experiments.
    #[deprecated(note = "construct campaigns through `ScenarioSpec::build()` and \
                `PassiveConfig::from_scenario` — literal construction \
                bypasses scenario validation and fingerprinting")]
    pub fn quick(days: f64) -> Self {
        PassiveConfig {
            max_days: days,
            ..Default::default()
        }
    }

    /// Build a passive configuration from a resolved scenario — the
    /// typed front door every campaign binary shares. Scenario fields
    /// that are unset (`seed`, `max_days`, `scheduler`) keep the
    /// campaign defaults; sites and constellations come from the
    /// resolution (full catalogs when the scenario listed none).
    ///
    /// Mobility tracks are not consumed here: the passive driver keys
    /// its process-wide pass cache on the site code, which is only
    /// sound for a fixed observer. Mobile sites flow through
    /// [`satiot_scenarios::MobilityTrack::legs`] and
    /// [`satiot_orbit::pass::PassPredictor::passes_over_legs`] instead
    /// (see `exp_mobile`).
    pub fn from_scenario(scenario: &satiot_scenarios::ResolvedScenario) -> PassiveConfig {
        let mut cfg = PassiveConfig::default();
        if let Some(seed) = scenario.seed {
            cfg.seed = seed;
        }
        if let Some(days) = scenario.max_days {
            cfg.max_days = days;
        }
        if let Some(scheduler) = scenario.scheduler {
            cfg.scheduler = match scheduler {
                satiot_scenarios::spec::SchedulerSpec::Predictive => SchedulerKind::Predictive,
                satiot_scenarios::spec::SchedulerSpec::Vanilla { dwell_s } => {
                    SchedulerKind::Vanilla { dwell_s }
                }
            };
        }
        cfg.sites = scenario.static_sites();
        cfg.constellations = scenario.constellations.clone();
        cfg
    }
}

/// One covered pass with its measured outcome.
#[derive(Debug, Clone)]
pub struct SitePassRecord {
    /// Site code.
    pub site: &'static str,
    /// Constellation label.
    pub constellation: &'static str,
    /// Satellite index within the constellation.
    pub sat_id: u32,
    /// Theoretical window and reception outcome.
    pub window: EffectiveWindow,
    /// Seconds of the window a station actually listened.
    pub covered_s: f64,
    /// Whether the assigned station was powered/online at culmination
    /// (false for unscheduled passes).
    pub station_up: bool,
    /// Weather at culmination.
    pub weather: &'static str,
    /// Maximum elevation of the pass, degrees.
    pub max_elevation_deg: f64,
    /// Normalised in-window positions of the received beacons.
    pub reception_positions: Vec<f64>,
}

/// The campaign output.
#[derive(Debug, Clone, Default)]
pub struct PassiveResults {
    /// Every decoded beacon — populated only under the full-trace sink
    /// ([`crate::sink::SinkMode::Full`], the default); empty under the
    /// bounded-memory modes.
    pub traces: TraceSet,
    /// Every covered pass.
    pub passes: Vec<SitePassRecord>,
    /// Recoverable input damage survived during the run (sites skipped,
    /// NaN passes dropped, …), merged per site in configuration order.
    pub faults: FaultLog,
    /// Streaming per-constellation sketches over the decoded beacons,
    /// merged per site in configuration order. `None` only under the
    /// null sink (or when every site was skipped).
    pub sketch: Option<TraceAggregate>,
    /// Sink accounting: how many traces were emitted, retained in RAM,
    /// and spilled to disk.
    pub sink: SinkStats,
    /// Spill parts awaiting final concatenation (drained by the
    /// campaign drivers before returning).
    pub(crate) spill_parts: Vec<SpillPart>,
}

impl PassiveResults {
    /// Contact statistics for one constellation across the given sites
    /// (all sites when `sites` is empty). Each site forms an independent
    /// timeline: overlapping windows union per site and inter-contact
    /// gaps never span sites.
    pub fn contact_stats(&self, constellation: &str, sites: &[&str]) -> ContactStats {
        let mut groups: Vec<(&str, Vec<EffectiveWindow>)> = Vec::new();
        for p in self
            .passes
            .iter()
            .filter(|p| p.constellation == constellation)
            .filter(|p| sites.is_empty() || sites.contains(&p.site))
        {
            match groups.iter_mut().find(|(s, _)| *s == p.site) {
                Some((_, v)) => v.push(p.window.clone()),
                None => groups.push((p.site, vec![p.window.clone()])),
            }
        }
        let groups: Vec<Vec<EffectiveWindow>> = groups.into_iter().map(|(_, v)| v).collect();
        ContactStats::compute_grouped(&groups)
    }

    /// All normalised reception positions (Fig 9 series).
    pub fn reception_positions(&self) -> Vec<f64> {
        self.passes
            .iter()
            .flat_map(|p| p.reception_positions.iter().copied())
            .collect()
    }

    /// Only the passes a station actually listened to.
    pub fn covered_passes(&self) -> impl Iterator<Item = &SitePassRecord> {
        self.passes.iter().filter(|p| p.covered_s > 0.0)
    }

    /// Contact statistics over *covered* passes only — the per-window
    /// duration comparison of the paper's Figure 4a (a window's effective
    /// duration is only measurable where a station listened).
    pub fn contact_stats_covered(&self, constellation: &str, sites: &[&str]) -> ContactStats {
        let mut groups: Vec<(&str, Vec<EffectiveWindow>)> = Vec::new();
        for p in self
            .covered_passes()
            .filter(|p| p.constellation == constellation)
            .filter(|p| sites.is_empty() || sites.contains(&p.site))
        {
            match groups.iter_mut().find(|(s, _)| *s == p.site) {
                Some((_, v)) => v.push(p.window.clone()),
                None => groups.push((p.site, vec![p.window.clone()])),
            }
        }
        let groups: Vec<Vec<EffectiveWindow>> = groups.into_iter().map(|(_, v)| v).collect();
        ContactStats::compute_grouped(&groups)
    }

    /// Per-contact beacon reception ratios grouped by weather label
    /// (Fig 3d series).
    pub fn reception_ratio_by_weather(&self, constellation: &str) -> Vec<(&'static str, Vec<f64>)> {
        let mut groups: Vec<(&'static str, Vec<f64>)> = Vec::new();
        for p in self
            .covered_passes()
            .filter(|p| p.station_up)
            .filter(|p| p.constellation == constellation)
        {
            if let Some(r) = p.window.beacon_reception_ratio() {
                match groups.iter_mut().find(|(w, _)| *w == p.weather) {
                    Some((_, v)) => v.push(r),
                    None => groups.push((p.weather, vec![r])),
                }
            }
        }
        groups
    }
}

/// The passive campaign driver.
pub struct PassiveCampaign {
    config: PassiveConfig,
}

/// Satellite bookkeeping flattened across constellations. The SGP4
/// propagator is built (and thereby validated) once at flatten time, so
/// the per-site shards clone it instead of re-deriving — and possibly
/// panicking on — the raw elements.
struct FlatSat {
    constellation: &'static str,
    sat_id: u32,
    frequency_mhz: f64,
    beacon_interval_s: f64,
    tx_power_dbm: f64,
    sgp4: Sgp4,
}

impl PassiveCampaign {
    /// Create a campaign from a configuration.
    pub fn new(config: PassiveConfig) -> Self {
        PassiveCampaign { config }
    }

    /// Run the campaign and return merged results.
    ///
    /// Two phases: the *predict* phase shards one *(site × satellite)*
    /// pass-prediction task per pair across the sweep pool, all served
    /// through the shared [`crate::sweep`] cache; the *simulate* phase
    /// then replays each site on its own forked RNG stream. Sites merge
    /// in configuration order, so the output is bit-identical to a
    /// serial run (`parallel_and_serial_agree` pins this).
    ///
    /// `opts` selects the thread count, the ephemeris backend for both
    /// phases, and whether the simulate phase runs the batched SoA
    /// kernels or the scalar hot path (bit-identical either way).
    ///
    /// # Errors
    ///
    /// Returns [`SatIotError`] when the configuration cannot produce a
    /// meaningful campaign (NaN/negative `max_days`, empty site or
    /// constellation lists, a non-positive vanilla dwell, or catalog
    /// elements that fail to build). Recoverable input damage — a site
    /// with a non-finite location or empty range, a NaN-timed or
    /// zero-duration pass — is instead *survived* and counted in
    /// [`PassiveResults::faults`].
    pub fn run(&self, opts: &RunOptions) -> Result<PassiveResults, SatIotError> {
        self.validate()?;
        let sats = self.flatten_sats()?;
        let root = Rng::from_seed(self.config.seed);
        let n_sites = self.config.sites.len();
        let n_sats = sats.len();
        let threads = if self.config.parallel {
            opts.threads.unwrap_or_else(pool::thread_count)
        } else {
            1
        };

        // Predict phase: satellite-granularity sharding over the cache.
        let tasks: Vec<(usize, usize)> = (0..n_sites)
            .flat_map(|s| (0..n_sats).map(move |q| (s, q)))
            .collect();
        let lists: Vec<Arc<Vec<Pass>>> =
            pool::parallel_map_with(&tasks, threads, |_, &(si, qi)| {
                predict_site_sat(
                    &self.config.sites[si],
                    &sats[qi],
                    self.config.max_days,
                    opts.ephemeris,
                    opts.visibility,
                    opts.culling,
                )
            });
        let site_lists: Vec<&[Arc<Vec<Pass>>]> = (0..n_sites)
            .map(|s| &lists[s * n_sats..(s + 1) * n_sats])
            .collect();

        // Simulate phase: one task per site, RNG streams forked by index.
        let partials: Vec<PassiveResults> =
            pool::parallel_map_with(&self.config.sites, threads, |idx, site| {
                let rng = root.fork_indexed("site", idx as u64);
                run_site(
                    &self.config,
                    opts,
                    idx,
                    site,
                    &sats,
                    rng,
                    Some(site_lists[idx]),
                )
            });
        let mut results = merge(partials);
        finalize(&mut results);
        Ok(results)
    }

    /// The pre-pool driver: one scoped thread per site, each predicting
    /// its passes inline and uncached. Kept as the measured baseline the
    /// pooled sweep is benchmarked against (`benches/campaigns.rs`);
    /// produces bit-identical results to [`Self::run`] under the same
    /// environment (it resolves its options via
    /// [`RunOptions::from_env`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::run`].
    #[deprecated(note = "use `run(&RunOptions)`; this legacy driver resolves \
                         its options from the environment")]
    pub fn run_with_site_threads(&self) -> Result<PassiveResults, SatIotError> {
        let opts = RunOptions::from_env();
        self.validate()?;
        let sats = self.flatten_sats()?;
        let root = Rng::from_seed(self.config.seed);
        let mut slots: Vec<Option<PassiveResults>> =
            (0..self.config.sites.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (idx, (site, slot)) in self.config.sites.iter().zip(slots.iter_mut()).enumerate() {
                let rng = root.fork_indexed("site", idx as u64);
                let sats = &sats;
                let cfg = &self.config;
                let opts = &opts;
                scope.spawn(move || {
                    *slot = Some(run_site(cfg, opts, idx, site, sats, rng, None));
                });
            }
        });
        // A scoped thread that panicked would already have propagated at
        // the scope join; an unfilled slot is therefore unreachable, but
        // degrade to an empty partial rather than panicking on it.
        let mut results = merge(slots.into_iter().map(|s| s.unwrap_or_default()).collect());
        finalize(&mut results);
        Ok(results)
    }

    /// Reject configurations the campaign cannot run meaningfully.
    fn validate(&self) -> Result<(), SatIotError> {
        let cfg = &self.config;
        if cfg.max_days.is_nan() {
            return Err(SatIotError::NonFiniteTime {
                context: "PassiveConfig.max_days",
                value: cfg.max_days,
            });
        }
        if cfg.max_days < 0.0 {
            return Err(SatIotError::InvalidConfig {
                field: "max_days",
                value: cfg.max_days,
                requirement: ">= 0 (INFINITY runs each site to its full campaign range)",
            });
        }
        if cfg.sites.is_empty() {
            return Err(SatIotError::EmptyPassList {
                context: "PassiveConfig.sites",
            });
        }
        if cfg.constellations.is_empty() {
            return Err(SatIotError::EmptyPassList {
                context: "PassiveConfig.constellations",
            });
        }
        if let SchedulerKind::Vanilla { dwell_s } = cfg.scheduler {
            if !(dwell_s.is_finite() && dwell_s > 0.0) {
                return Err(SatIotError::InvalidConfig {
                    field: "dwell_s",
                    value: dwell_s,
                    requirement: "finite and > 0 (a zero dwell never rotates off a target)",
                });
            }
        }
        Ok(())
    }

    fn flatten_sats(&self) -> Result<Vec<FlatSat>, SatIotError> {
        let epoch = campaign_epoch();
        let mut flat = Vec::new();
        for spec in &self.config.constellations {
            for sat in spec.catalog(epoch) {
                let sgp4 = sat
                    .sgp4()
                    .map_err(|e| SatIotError::orbit("building catalog propagators", e))?;
                flat.push(FlatSat {
                    constellation: sat.constellation,
                    sat_id: sat.sat_id,
                    frequency_mhz: sat.frequency_mhz,
                    beacon_interval_s: sat.beacon_interval_s,
                    tx_power_dbm: spec.tx_power_dbm,
                    sgp4,
                });
            }
        }
        Ok(flat)
    }
}

/// Merge per-site partial results in site order (sketch merges
/// included, so the aggregate is identical across drivers).
fn merge(partials: Vec<PassiveResults>) -> PassiveResults {
    let mut merged = PassiveResults::default();
    for p in partials {
        merged.traces.traces.extend(p.traces.traces);
        merged.passes.extend(p.passes);
        merged.faults.merge(&p.faults);
        match (&mut merged.sketch, p.sketch) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (slot @ None, Some(theirs)) => *slot = Some(theirs),
            (_, None) => {}
        }
        merged.sink.merge(&p.sink);
        merged.spill_parts.extend(p.spill_parts);
    }
    merged
}

/// Concatenate any spill parts into the final archive (in site order —
/// `merge` collected them in configuration order) and fold IO failures
/// into the fault ledger.
fn finalize(results: &mut PassiveResults) {
    let parts = std::mem::take(&mut results.spill_parts);
    let io_errors = sink::finalize_spill(&parts);
    results.faults.record_n(Fault::SinkIo, io_errors);
}

/// Drop candidate passes the pipeline cannot simulate: NaN/∞ AOS, LOS,
/// or TCA times (counted as [`Fault::NanPassTime`]) and zero- or
/// negative-duration windows (counted as [`Fault::DegeneratePass`]).
/// Returns the number of candidates dropped. Public so callers feeding
/// externally-sourced pass lists through [`crate::scheduler::Scheduler`]
/// can apply the same contract the campaign drivers do.
pub fn sanitize_candidates(candidates: &mut Vec<CandidatePass>, faults: &mut FaultLog) -> usize {
    let before = candidates.len();
    candidates.retain(|c| {
        let finite =
            c.pass.aos.0.is_finite() && c.pass.los.0.is_finite() && c.pass.tca.0.is_finite();
        if !finite {
            faults.record(Fault::NanPassTime);
            return false;
        }
        if c.pass.duration_s() <= 0.0 {
            faults.record(Fault::DegeneratePass);
            return false;
        }
        true
    });
    before - candidates.len()
}

/// The site's simulated range under the campaign's day cap. Both the
/// predict phase and `run_site` derive the range through this helper so
/// their cache keys and scan bounds agree bit-for-bit.
fn site_range(site: &Site, max_days: f64) -> (JulianDate, JulianDate, f64) {
    let start = site.start();
    let days = site.active_days().min(max_days);
    (start, start + days, days)
}

/// Predict (through the shared cache) one satellite's passes over one
/// site for the site's configured campaign range, honouring the run's
/// ephemeris and visibility modes.
fn predict_site_sat(
    site: &Site,
    sat: &FlatSat,
    max_days: f64,
    mode: EphemerisMode,
    visibility: VisibilityMode,
    culling: CullingMode,
) -> Arc<Vec<Pass>> {
    let (start, end, _) = site_range(site, max_days);
    let grid_key = GridKey::new(sat.constellation, sat.sat_id, start, end);
    sweep::passes_for(
        PassKey::new(
            site.code,
            sat.constellation,
            sat.sat_id,
            start,
            end,
            calib::THEORETICAL_MASK_RAD,
        ),
        || {
            sweep::predictor_with_mode(
                mode,
                visibility,
                culling,
                grid_key,
                &sat.sgp4,
                site.geodetic(),
                calib::THEORETICAL_MASK_RAD,
            )
        },
    )
}

/// Reusable structure-of-arrays arena for one pass's gathered beacon
/// emissions: the heard emissions' timestamps, stations, and geometry
/// columns, plus the [`ChannelBatch`] the chunked kernels run over. One arena lives per simulate-phase worker (`run_site`
/// allocates it once and `clear` keeps the column capacity across
/// passes), so the hot loop performs no per-pass allocation in steady
/// state.
#[derive(Debug, Default)]
struct EmissionArena {
    /// Emission instants (heard emissions, in emission order).
    t: Vec<JulianDate>,
    /// Station assigned by the covering piece.
    station: Vec<u32>,
    /// Whether `sample_at` produced geometry for the entry (it declines
    /// degenerate look angles). Absent-geometry entries consume no RNG
    /// in either kernel; the scatter phase just steps over them.
    geom_ok: Vec<bool>,
    /// Doppler shift at emission, Hz (0 when `geom_ok` is false).
    doppler_hz: Vec<f64>,
    /// Doppler drift at emission, Hz/s (0 when `geom_ok` is false).
    doppler_rate_hz_s: Vec<f64>,
    /// Per-entry demodulator Doppler penalty (`None` = out of sync
    /// range), filled by [`Self::compute_penalties`].
    penalty: Vec<Option<f64>>,
    /// Geometry input / channel output columns for the SoA kernels.
    batch: ChannelBatch,
}

impl EmissionArena {
    /// Entries gathered for the current pass.
    fn len(&self) -> usize {
        self.t.len()
    }

    /// Empty every column, keeping capacity for the next pass.
    fn clear(&mut self) {
        self.t.clear();
        self.station.clear();
        self.geom_ok.clear();
        self.doppler_hz.clear();
        self.doppler_rate_hz_s.clear();
        self.penalty.clear();
        self.batch.clear();
    }

    /// Append one heard emission. Entries without geometry get
    /// placeholder zeros in the numeric columns; the scatter phase steps
    /// over them, so the placeholders never reach a link sample.
    fn push(&mut self, t: JulianDate, station: u32, geom: Option<GeometrySample>) {
        self.t.push(t);
        self.station.push(station);
        match geom {
            Some(g) => {
                self.geom_ok.push(true);
                self.doppler_hz.push(g.doppler_hz);
                self.doppler_rate_hz_s.push(g.doppler_rate_hz_s);
                self.batch.push(g.range_km, g.elevation_rad);
            }
            None => {
                self.geom_ok.push(false);
                self.doppler_hz.push(0.0);
                self.doppler_rate_hz_s.push(0.0);
                self.batch.push(0.0, 0.0);
            }
        }
    }

    /// Fill the Doppler-penalty column from the gathered shift/drift
    /// columns (deterministic; no RNG).
    fn compute_penalties(&mut self, cfg: &LoRaConfig, payload_len: usize) {
        self.penalty.clear();
        self.penalty.extend(
            self.doppler_hz
                .iter()
                .zip(&self.doppler_rate_hz_s)
                .map(|(&hz, &hz_s)| total_penalty_db(cfg, payload_len, hz, hz_s)),
        );
    }
}

/// The coverage piece to probe for station liveness at culmination: the
/// piece whose interval contains TCA, falling back to the piece nearest
/// it in time (a truncated vanilla-dwell slot may not straddle TCA at
/// all). Probing `pieces.first()` unconditionally was wrong whenever a
/// *different* piece contained TCA — it consulted an unrelated
/// station's availability timeline.
fn piece_for_tca<'a>(pieces: &[&'a Coverage], tca: JulianDate) -> Option<&'a Coverage> {
    fn gap_s(c: &Coverage, t: JulianDate) -> f64 {
        if t < c.start {
            c.start.seconds_since(t)
        } else if t > c.end {
            t.seconds_since(c.end)
        } else {
            0.0
        }
    }
    pieces
        .iter()
        .copied()
        .find(|c| tca >= c.start && tca <= c.end)
        .or_else(|| {
            pieces
                .iter()
                .copied()
                .min_by(|a, b| gap_s(a, tca).total_cmp(&gap_s(b, tca)))
        })
}

/// Simulate one site end to end. `site_idx` is the site's configuration
/// index (it selects the RNG stream upstream and names spill-sink part
/// files here); `prepredicted` carries the predict phase's
/// per-satellite pass lists; `None` predicts inline (the legacy
/// uncached baseline).
fn run_site(
    cfg: &PassiveConfig,
    opts: &RunOptions,
    site_idx: usize,
    site: &Site,
    sats: &[FlatSat],
    rng: Rng,
    prepredicted: Option<&[Arc<Vec<Pass>>]>,
) -> PassiveResults {
    let _shard_span = SITE_SHARD_S.start();
    let mut results = PassiveResults::default();
    let (start, end, days) = site_range(site, cfg.max_days);
    // A site with an empty/inverted range or a location that is not a
    // point on Earth cannot be simulated; skip it, count it, and let the
    // rest of the campaign proceed.
    let location_ok =
        site.lat_deg.is_finite() && site.lon_deg.is_finite() && site.alt_km.is_finite();
    if !(days.is_finite() && days > 0.0 && location_ok) {
        results.faults.record(Fault::SkippedSite);
        return results;
    }
    // The shard's trace sink: decoded beacons flow here instead of an
    // unconditional in-RAM Vec (see `crate::sink`).
    let mut trace_sink = opts.sink.shard(site_idx);

    // Weather timeline, indexed by seconds since site start.
    let mut weather_rng = rng.fork("weather");
    let weather = WeatherProcess::generate(
        &site.climate.weather_params(),
        SimTime::from_days(days),
        &mut weather_rng,
    );

    // Pass predictions for every satellite: cached lists from the
    // predict phase when provided, inline prediction otherwise. The
    // simulate-phase predictors are grid-backed too (sharing the predict
    // phase's grid `Arc`s through [`sweep::grid_for`]): `sample_at`
    // probes `t` and `t + 1 s`, and an instant outside the grid window
    // falls back to direct SGP4 bit-identically, so the geometry loop is
    // safe to interpolate.
    let mut predictors: Vec<PassPredictor> = Vec::with_capacity(sats.len());
    let mut candidates: Vec<CandidatePass> = Vec::new();
    for (i, sat) in sats.iter().enumerate() {
        let grid_key = GridKey::new(sat.constellation, sat.sat_id, start, end);
        let predictor = sweep::predictor_with_mode(
            opts.ephemeris,
            opts.visibility,
            opts.culling,
            grid_key,
            &sat.sgp4,
            site.geodetic(),
            calib::THEORETICAL_MASK_RAD,
        );
        match (&predictor, prepredicted) {
            (_, Some(lists)) => candidates.extend(lists[i].iter().map(|pass| CandidatePass {
                sat_index: i,
                pass: *pass,
            })),
            (Some(p), None) => candidates.extend(
                p.passes(start, end)
                    .into_iter()
                    .map(|pass| CandidatePass { sat_index: i, pass }),
            ),
            // Culled pair: the pass list is provably empty, skip the
            // inline scan entirely.
            (None, None) => {}
        }
        // A culled satellite contributes no candidate passes, so its
        // predictor slot is never sampled; a plain ungridded predictor
        // keeps the index mapping intact.
        predictors.push(predictor.unwrap_or_else(|| {
            PassPredictor::new(
                sat.sgp4.clone(),
                site.geodetic(),
                calib::THEORETICAL_MASK_RAD,
            )
            .with_visibility(opts.visibility)
        }));
    }
    PASSES_PREDICTED.add(candidates.len() as u64);
    sanitize_candidates(&mut candidates, &mut results.faults);
    // total_cmp on the raw JD bits: a NaN that slipped past sanitising
    // must never panic the sort (it orders after every finite time).
    candidates.sort_by(|a, b| a.pass.aos.0.total_cmp(&b.pass.aos.0));

    // Station assignment.
    let coverage: Vec<Coverage> = match cfg.scheduler {
        SchedulerKind::Predictive => PredictiveScheduler.schedule(&candidates, site.station_count),
        SchedulerKind::Vanilla { dwell_s } => VanillaScheduler {
            dwell_s,
            n_targets: sats.len(),
            origin: start,
        }
        .schedule(&candidates, site.station_count),
    };

    // Crowd-sourced stations are not always on: generate each station's
    // correlated up/down timeline (calibrated against Table 1's volumes).
    let availability: Vec<StationAvailability> = (0..site.station_count)
        .map(|s| {
            let mut st_rng = rng.fork_indexed("station", s as u64);
            StationAvailability::generate(
                &AvailabilityParams::default(),
                SimTime::from_days(days),
                &mut st_rng,
            )
        })
        .collect();

    // Group coverage pieces per pass.
    let mut coverage_by_pass: Vec<Vec<&Coverage>> = vec![Vec::new(); candidates.len()];
    for c in &coverage {
        coverage_by_pass[c.pass_idx].push(c);
    }

    let beacon_cfg = LoRaConfig::dts_beacon();
    let epoch = campaign_epoch();
    // One SoA arena per simulate worker, reused across every pass of the
    // site (cleared, not reallocated) — likewise the heard-emission list
    // the listen-gate prepass fills for both kernels.
    let mut arena = EmissionArena::default();
    let mut heard: Vec<(JulianDate, u32)> = Vec::new();

    for (pass_idx, pieces) in coverage_by_pass.iter().enumerate() {
        let cp = &candidates[pass_idx];
        let sat = &sats[cp.sat_index];
        let predictor = &predictors[cp.sat_index];
        let mut pass_rng = rng.fork_indexed("pass", pass_idx as u64);

        if pieces.is_empty() {
            // Uncovered pass: no station listened, so no receptions — but
            // the theoretical window still exists and extends the
            // measured inter-contact gaps (paper Fig 4b), so record it.
            let tca_rel = cp.pass.tca.seconds_since(start);
            let wx = weather.at(SimTime::from_secs(tca_rel));
            // Count emissions with the same per-satellite beacon phase
            // the covered branch uses — a truncated `duration / interval`
            // denominator would bias the Fig 4b gap/ratio statistics
            // between covered and uncovered windows.
            let phase = (sat.sat_id as f64 * 1.37) % sat.beacon_interval_s;
            let transmitted = beacon_times(&cp.pass, sat.beacon_interval_s, phase).len();
            results.passes.push(SitePassRecord {
                site: site.code,
                constellation: sat.constellation,
                sat_id: sat.sat_id,
                window: EffectiveWindow {
                    theoretical: TheoreticalWindow {
                        start_s: cp.pass.aos.seconds_since(start),
                        end_s: cp.pass.los.seconds_since(start),
                    },
                    first_rx_s: None,
                    last_rx_s: None,
                    received: 0,
                    transmitted,
                },
                covered_s: 0.0,
                station_up: false,
                weather: wx.label(),
                max_elevation_deg: cp.pass.max_elevation_rad.to_degrees(),
                reception_positions: Vec::new(),
            });
            continue;
        }

        let mut budget = LinkBudget::dts_downlink(sat.frequency_mhz, cfg.ground_antenna);
        budget.tx_power_dbm = sat.tx_power_dbm;
        // Per-pass horizon severity: the skyline differs by azimuth.
        let (clo, chi) = calib::CLUTTER_SCALE_RANGE;
        budget.clutter_scale = pass_rng.uniform(clo, chi);
        let beacon_len =
            crate::messages::Message::Beacon(crate::messages::Beacon::nominal(sat.sat_id, 0))
                .phy_payload_len(beacon_cfg.cr);

        // Weather + per-pass shadowing drawn at culmination.
        let tca_rel = cp.pass.tca.seconds_since(start);
        let wx = weather.at(SimTime::from_secs(tca_rel));
        let shadowing = budget.draw_shadowing_db(wx, &mut pass_rng);

        // Beacon emissions across the whole pass (phase per satellite).
        let phase = (sat.sat_id as f64 * 1.37) % sat.beacon_interval_s;
        let emissions = beacon_times(&cp.pass, sat.beacon_interval_s, phase);
        let transmitted = emissions.len();
        BEACONS_EMITTED.add(transmitted as u64);

        let mut received_times_rel: Vec<f64> = Vec::new();
        let mut positions: Vec<f64> = Vec::new();

        // Coverage gates and the listen-efficiency draws, hoisted ahead
        // of the channel work for both kernels. Every gate is applied in
        // emission order — is any station listening at this instant, is
        // the assigned station powered and online, has it finished
        // retuning to this satellite, and is it free of housekeeping
        // (MQTT sync, OTA, retune; the one stochastic gate) — so the
        // pass RNG stream reads: all listen draws for the pass, then the
        // per-reception fading/decode draws. Drawing the listen gates up
        // front keeps the scalar and batched paths on one stream *and*
        // spares the batched gather from sampling geometry for emissions
        // nobody heard.
        heard.clear();
        for t in &emissions {
            let piece = pieces.iter().find(|c| *t >= c.start && *t <= c.end);
            let Some(piece) = piece else { continue };
            if !availability[piece.station as usize].is_up(t.seconds_since(start)) {
                continue;
            }
            if t.seconds_since(piece.start) < calib::STATION_RETUNE_S {
                continue;
            }
            if !pass_rng.chance(calib::STATION_LISTEN_EFFICIENCY) {
                continue;
            }
            heard.push((*t, piece.station));
        }

        match opts.batch {
            // The legacy element-at-a-time hot path (`SATIOT_BATCH=0`):
            // the batched branch below must replay this loop's RNG
            // stream draw for draw.
            BatchMode::Off => {
                for &(t, station) in &heard {
                    let Some(geom) = sample_at(predictor, t, sat.frequency_mhz * 1e6) else {
                        continue;
                    };
                    let sample = budget.sample(
                        geom.range_km,
                        geom.elevation_rad,
                        wx,
                        shadowing,
                        &mut pass_rng,
                    );
                    let Some(doppler_penalty) = total_penalty_db(
                        &beacon_cfg,
                        beacon_len,
                        geom.doppler_hz,
                        geom.doppler_rate_hz_s,
                    ) else {
                        continue; // Offset beyond sync range.
                    };
                    let snr = sample.snr_db - doppler_penalty;
                    if !packet_decodes(&beacon_cfg, beacon_len, snr, &mut pass_rng) {
                        continue;
                    }
                    BEACONS_DECODED.inc();
                    let t_rel_campaign = t.seconds_since(epoch);
                    received_times_rel.push(t.seconds_since(start));
                    positions.push(cp.pass.normalized_position(t));
                    trace_sink.record(BeaconTrace {
                        time_s: t_rel_campaign,
                        site: site.code.to_string(),
                        station,
                        constellation: sat.constellation.to_string(),
                        sat_id: sat.sat_id,
                        rssi_dbm: sample.rssi_dbm,
                        snr_db: snr,
                        elevation_deg: geom.elevation_rad.to_degrees(),
                        distance_km: geom.range_km,
                        doppler_hz: geom.doppler_hz,
                        weather: wx.label(),
                    });
                }
            }
            // The batched path: gather → kernels → scatter.
            BatchMode::On => {
                // Gather: geometry for the heard emissions only; no RNG
                // is touched, so gathering cannot shift any stream.
                arena.clear();
                for &(t, station) in &heard {
                    arena.push(t, station, sample_at(predictor, t, sat.frequency_mhz * 1e6));
                }
                // Kernels: chunked SoA channel math over the gathered
                // columns, then the deterministic Doppler penalties.
                arena.batch.run(&budget, wx);
                arena.compute_penalties(&beacon_cfg, beacon_len);
                // Scatter: walk the arena in emission order, consuming
                // the pass RNG stream in exactly the scalar order
                // (fading draws, then the decode draw).
                let noise_floor_dbm = budget.noise_floor_dbm();
                for i in 0..arena.len() {
                    if !arena.geom_ok[i] {
                        continue;
                    }
                    let sample = budget.sample_prepared(
                        arena.batch.range_km[i],
                        arena.batch.elevation_rad[i],
                        wx,
                        arena.batch.mean_rssi_dbm[i],
                        arena.batch.k_linear[i],
                        shadowing,
                        noise_floor_dbm,
                        &mut pass_rng,
                    );
                    let Some(doppler_penalty) = arena.penalty[i] else {
                        continue; // Offset beyond sync range.
                    };
                    let snr = sample.snr_db - doppler_penalty;
                    if !packet_decodes(&beacon_cfg, beacon_len, snr, &mut pass_rng) {
                        continue;
                    }
                    BEACONS_DECODED.inc();
                    let t = arena.t[i];
                    received_times_rel.push(t.seconds_since(start));
                    positions.push(cp.pass.normalized_position(t));
                    trace_sink.record(BeaconTrace {
                        time_s: t.seconds_since(epoch),
                        site: site.code.to_string(),
                        station: arena.station[i],
                        constellation: sat.constellation.to_string(),
                        sat_id: sat.sat_id,
                        rssi_dbm: sample.rssi_dbm,
                        snr_db: snr,
                        elevation_deg: arena.batch.elevation_rad[i].to_degrees(),
                        distance_km: arena.batch.range_km[i],
                        doppler_hz: arena.doppler_hz[i],
                        weather: wx.label(),
                    });
                }
            }
        }

        let theoretical = TheoreticalWindow {
            start_s: cp.pass.aos.seconds_since(start),
            end_s: cp.pass.los.seconds_since(start),
        };
        let window = EffectiveWindow {
            theoretical,
            first_rx_s: received_times_rel.first().copied(),
            last_rx_s: received_times_rel.last().copied(),
            received: received_times_rel.len(),
            transmitted,
        };
        let station_up = piece_for_tca(pieces, cp.pass.tca)
            .map(|c| availability[c.station as usize].is_up(tca_rel))
            .unwrap_or(false);
        results.passes.push(SitePassRecord {
            site: site.code,
            constellation: sat.constellation,
            sat_id: sat.sat_id,
            window,
            covered_s: pieces.iter().map(|c| c.duration_s()).sum(),
            station_up,
            weather: wx.label(),
            max_elevation_deg: cp.pass.max_elevation_rad.to_degrees(),
            reception_positions: positions,
        });
    }

    let out = trace_sink.finish();
    results.traces = out.traces;
    results.sketch = out.sketch;
    results.sink = out.stats;
    results.spill_parts.extend(out.spill);
    results.faults.record_n(Fault::SinkIo, out.io_errors);
    results
}

/// Theoretical daily availability (hours/day) of a constellation over a
/// site: the union of all satellites' above-mask intervals, per day —
/// the paper's Figure 3a quantity.
pub fn theoretical_daily_hours(spec: &ConstellationSpec, site: &Site, days: u32) -> Vec<f64> {
    let epoch = campaign_epoch();
    let start = site.start();
    let end = start + days as f64;
    // Per-satellite pass lists: pooled, through the shared cache (a
    // campaign over the same range reuses them and vice versa).
    let catalog = spec.catalog(epoch);
    let lists = pool::parallel_map(&catalog, |_, sat| {
        // A satellite whose elements fail to build contributes nothing
        // (counted via the `core.faults.sgp4_failures` obs counter)
        // rather than aborting the whole availability analysis.
        let sgp4 = match sat.sgp4() {
            Ok(sgp4) => sgp4,
            Err(_) => {
                let mut log = FaultLog::default();
                log.record(Fault::Sgp4Failure);
                return Arc::new(Vec::new());
            }
        };
        sweep::passes_for(
            PassKey::new(
                site.code,
                sat.constellation,
                sat.sat_id,
                start,
                end,
                calib::THEORETICAL_MASK_RAD,
            ),
            || {
                sweep::sat_predictor(
                    sat.constellation,
                    sat.sat_id,
                    &sgp4,
                    site.geodetic(),
                    calib::THEORETICAL_MASK_RAD,
                    start,
                    end,
                )
            },
        )
    });
    // Collect all pass intervals (seconds relative to start).
    let mut intervals: Vec<(f64, f64)> = lists
        .iter()
        .flat_map(|l| {
            l.iter()
                .map(|pass| (pass.aos.seconds_since(start), pass.los.seconds_since(start)))
        })
        .collect();
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Union sweep.
    let mut union: Vec<(f64, f64)> = Vec::new();
    for (s, e) in intervals {
        match union.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => union.push((s, e)),
        }
    }
    // Slice per day.
    (0..days)
        .map(|d| {
            let day_start = d as f64 * 86_400.0;
            let day_end = day_start + 86_400.0;
            let covered: f64 = union
                .iter()
                .map(|(s, e)| (e.min(day_end) - s.max(day_start)).max(0.0))
                .sum();
            covered / 3_600.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_scenarios::constellations::{fossa, tianqi};
    use satiot_scenarios::sites::measurement_sites;

    fn hk_site() -> Site {
        measurement_sites()
            .into_iter()
            .find(|s| s.code == "HK")
            .unwrap()
    }

    /// A small, fast campaign: one site, FOSSA only, two days.
    fn small_config() -> PassiveConfig {
        PassiveConfig {
            seed: 7,
            max_days: 2.0,
            scheduler: SchedulerKind::Predictive,
            sites: vec![hk_site()],
            constellations: vec![fossa()],
            ground_antenna: AntennaPattern::QuarterWaveMonopole,
            parallel: false,
        }
    }

    /// Hermetic machine-default options (no environment involvement).
    fn opts() -> RunOptions {
        RunOptions::default()
    }

    #[test]
    fn small_campaign_produces_traces_and_passes() {
        let results = PassiveCampaign::new(small_config()).run(&opts()).unwrap();
        assert!(!results.passes.is_empty(), "no covered passes");
        assert!(!results.traces.is_empty(), "no beacons decoded");
        for t in &results.traces.traces {
            assert_eq!(t.site, "HK");
            assert_eq!(t.constellation, "FOSSA");
            assert!(
                (-150.0..=-100.0).contains(&t.rssi_dbm),
                "rssi {}",
                t.rssi_dbm
            );
            assert!(t.elevation_deg >= -0.5, "elevation {}", t.elevation_deg);
            assert!(t.distance_km > 400.0 && t.distance_km < 3_500.0);
            assert!(t.doppler_hz.abs() < 12_000.0);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = PassiveCampaign::new(small_config()).run(&opts()).unwrap();
        let b = PassiveCampaign::new(small_config()).run(&opts()).unwrap();
        assert_eq!(a.traces.len(), b.traces.len());
        assert_eq!(a.passes.len(), b.passes.len());
        for (x, y) in a.traces.traces.iter().zip(&b.traces.traces) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = PassiveCampaign::new(small_config()).run(&opts()).unwrap();
        let mut cfg = small_config();
        cfg.seed = 8;
        let b = PassiveCampaign::new(cfg).run(&opts()).unwrap();
        // Scheduler thinning and reception draws both depend on the seed.
        assert_ne!(a.traces.traces, b.traces.traces);
    }

    #[test]
    fn effective_windows_are_shorter_than_theoretical() {
        let mut cfg = small_config();
        cfg.max_days = 4.0;
        let results = PassiveCampaign::new(cfg).run(&opts()).unwrap();
        let stats = results.contact_stats("FOSSA", &[]);
        assert!(stats.total_windows > 0);
        // The headline finding: effective ≪ theoretical.
        assert!(
            stats.duration_shrink > 0.3,
            "shrink {} too small",
            stats.duration_shrink
        );
        assert!(stats.effective_min.mean < stats.theoretical_min.mean);
    }

    #[test]
    fn vanilla_scheduler_captures_fewer_beacons() {
        // The vanilla rotation's weakness only shows when stations must
        // divide attention across many targets: use all 39 satellites.
        let mut cfg = small_config();
        cfg.constellations = all_constellations();
        cfg.max_days = 1.5;
        let pred = PassiveCampaign::new(cfg.clone()).run(&opts()).unwrap();
        cfg.scheduler = SchedulerKind::Vanilla { dwell_s: 600.0 };
        let vanilla = PassiveCampaign::new(cfg).run(&opts()).unwrap();
        assert!(
            (vanilla.traces.len() as f64) < 0.7 * pred.traces.len() as f64,
            "vanilla {} !< 0.7 x predictive {}",
            vanilla.traces.len(),
            pred.traces.len()
        );
    }

    #[test]
    fn theoretical_daily_hours_scale_with_constellation_size() {
        let site = hk_site();
        let fossa_hours = theoretical_daily_hours(&fossa(), &site, 3);
        let tianqi_hours = theoretical_daily_hours(&tianqi(), &site, 3);
        let fossa_mean: f64 = fossa_hours.iter().sum::<f64>() / 3.0;
        let tianqi_mean: f64 = tianqi_hours.iter().sum::<f64>() / 3.0;
        // Paper Fig 3a: FOSSA (3 sats) ≈ 1–3 h/day; Tianqi (22) ≈ 13–19 h.
        assert!((0.3..5.0).contains(&fossa_mean), "FOSSA {fossa_mean} h/day");
        assert!(
            (8.0..24.0).contains(&tianqi_mean),
            "Tianqi {tianqi_mean} h/day"
        );
        assert!(tianqi_mean > 3.0 * fossa_mean);
    }

    #[test]
    fn reception_positions_are_normalized() {
        let results = PassiveCampaign::new(small_config()).run(&opts()).unwrap();
        let pos = results.reception_positions();
        assert!(!pos.is_empty());
        for p in pos {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    /// Pass-record fields that must agree bit-for-bit across drivers.
    fn pass_fingerprint(r: &PassiveResults) -> Vec<(&str, &str, u32, u64, bool, usize, usize)> {
        r.passes
            .iter()
            .map(|p| {
                (
                    p.site,
                    p.constellation,
                    p.sat_id,
                    p.covered_s.to_bits(),
                    p.station_up,
                    p.window.received,
                    p.window.transmitted,
                )
            })
            .collect()
    }

    /// The serial path, the pooled satellite-granularity sharding, and
    /// the legacy per-site-thread baseline must all produce bit-identical
    /// campaigns.
    #[test]
    fn parallel_and_serial_agree() {
        let mut cfg = small_config();
        cfg.sites = measurement_sites()
            .into_iter()
            .filter(|s| matches!(s.code, "HK" | "GZ"))
            .collect();
        cfg.max_days = 1.0;
        let serial = PassiveCampaign::new(cfg.clone()).run(&opts()).unwrap();
        cfg.parallel = true;
        let campaign = PassiveCampaign::new(cfg);
        let pooled = campaign.run(&opts()).unwrap();
        #[allow(deprecated)]
        let legacy = campaign.run_with_site_threads().unwrap();
        for other in [&pooled, &legacy] {
            assert_eq!(serial.traces.len(), other.traces.len());
            assert_eq!(serial.passes.len(), other.passes.len());
            for (a, b) in serial.traces.traces.iter().zip(&other.traces.traces) {
                assert_eq!(a, b);
            }
            assert_eq!(pass_fingerprint(&serial), pass_fingerprint(other));
        }
    }

    /// The tentpole A/B invariant: the batched SoA simulate path and the
    /// scalar hot path produce bit-identical campaigns, under both
    /// ephemeris backends.
    #[test]
    fn batched_and_scalar_paths_agree() {
        for mode in [EphemerisMode::On, EphemerisMode::Off] {
            let campaign = PassiveCampaign::new(small_config());
            let batched = campaign.run(&opts().with_ephemeris(mode)).unwrap();
            let scalar = campaign
                .run(&opts().with_ephemeris(mode).with_batch(BatchMode::Off))
                .unwrap();
            assert!(!batched.traces.is_empty(), "no beacons under {mode:?}");
            assert_eq!(batched.traces.traces, scalar.traces.traces);
            assert_eq!(pass_fingerprint(&batched), pass_fingerprint(&scalar));
        }
    }

    /// `station_up` must probe the station of the piece containing TCA
    /// (previously it always probed `pieces.first()`), falling back to
    /// the nearest piece when no piece straddles TCA.
    #[test]
    fn piece_for_tca_selects_the_covering_piece() {
        let jd = |s: f64| JulianDate(2_460_000.0 + s / 86_400.0);
        let piece = |station: u32, start_s: f64, end_s: f64| Coverage {
            pass_idx: 0,
            station,
            start: jd(start_s),
            end: jd(end_s),
        };
        let p0 = piece(0, 0.0, 100.0);
        let p1 = piece(1, 200.0, 400.0);
        let pieces = [&p0, &p1];
        // TCA inside the second piece selects its station, not pieces[0].
        assert_eq!(piece_for_tca(&pieces, jd(300.0)).unwrap().station, 1);
        assert_eq!(piece_for_tca(&pieces, jd(50.0)).unwrap().station, 0);
        // TCA in the gap: nearest piece wins.
        assert_eq!(piece_for_tca(&pieces, jd(120.0)).unwrap().station, 0);
        assert_eq!(piece_for_tca(&pieces, jd(190.0)).unwrap().station, 1);
        // TCA past every piece still resolves (truncated dwell slots).
        assert_eq!(piece_for_tca(&pieces, jd(500.0)).unwrap().station, 1);
        assert!(piece_for_tca(&[], jd(0.0)).is_none());
    }

    /// Uncovered windows must count transmissions with `beacon_times`
    /// (the per-satellite phase included), exactly like covered windows —
    /// not with a truncated `duration / interval` division.
    #[test]
    fn uncovered_windows_use_the_beacon_times_denominator() {
        // One station across all 39 satellites guarantees uncovered passes.
        let mut site = hk_site();
        site.station_count = 1;
        let mut cfg = small_config();
        cfg.sites = vec![site];
        cfg.constellations = all_constellations();
        cfg.max_days = 1.0;
        let results = PassiveCampaign::new(cfg.clone()).run(&opts()).unwrap();
        let uncovered: Vec<_> = results
            .passes
            .iter()
            .filter(|p| p.covered_s == 0.0)
            .collect();
        assert!(
            !uncovered.is_empty(),
            "scenario produced no uncovered passes"
        );

        let epoch = campaign_epoch();
        let intervals: std::collections::HashMap<(&str, u32), f64> = cfg
            .constellations
            .iter()
            .flat_map(|spec| spec.catalog(epoch))
            .map(|sat| ((sat.constellation, sat.sat_id), sat.beacon_interval_s))
            .collect();
        for p in uncovered {
            let interval = intervals[&(p.constellation, p.sat_id)];
            let phase = (p.sat_id as f64 * 1.37) % interval;
            let duration = p.window.theoretical.end_s - p.window.theoretical.start_s;
            let mut expected = 0usize;
            let mut t = phase.rem_euclid(interval);
            while t <= duration {
                expected += 1;
                t += interval;
            }
            // Same counting rule as `beacon_times` (±1 spans the float
            // round-off between the two duration computations).
            assert!(
                (p.window.transmitted as i64 - expected as i64).abs() <= 1,
                "{}-{} transmitted {} expected {expected}",
                p.constellation,
                p.sat_id,
                p.window.transmitted,
            );
            assert_eq!(p.window.received, 0);
        }
    }

    /// A NaN AOS fed through the public scheduling pipeline is dropped
    /// and counted — never a sort panic (the old
    /// `partial_cmp(..).expect("no NaN times")` aborted here).
    #[test]
    fn nan_aos_is_dropped_not_fatal() {
        let jd = |s: f64| JulianDate(2_460_000.0 + s / 86_400.0);
        let pass = |aos: JulianDate, los: JulianDate| Pass {
            aos,
            tca: JulianDate(0.5 * (aos.0 + los.0)),
            los,
            max_elevation_rad: 0.5,
            tca_range_km: 900.0,
        };
        let mut candidates = vec![
            CandidatePass {
                sat_index: 0,
                pass: pass(jd(100.0), jd(400.0)),
            },
            CandidatePass {
                sat_index: 1,
                pass: pass(JulianDate(f64::NAN), jd(900.0)),
            },
            CandidatePass {
                sat_index: 2,
                pass: pass(jd(500.0), jd(500.0)), // Zero duration.
            },
        ];
        let mut faults = FaultLog::default();
        let dropped = sanitize_candidates(&mut candidates, &mut faults);
        assert_eq!(dropped, 2);
        assert_eq!(faults.nan_pass_times, 1);
        assert_eq!(faults.degenerate_passes, 1);
        candidates.sort_by(|a, b| a.pass.aos.0.total_cmp(&b.pass.aos.0));
        // The survivors still schedule cleanly.
        let coverage = PredictiveScheduler.schedule(&candidates, 2);
        assert!(coverage.iter().all(|c| c.pass_idx < candidates.len()));
    }

    #[test]
    fn nan_max_days_is_rejected() {
        let mut cfg = small_config();
        cfg.max_days = f64::NAN;
        let err = PassiveCampaign::new(cfg).run(&opts()).unwrap_err();
        assert!(matches!(
            err,
            SatIotError::NonFiniteTime {
                context: "PassiveConfig.max_days",
                ..
            }
        ));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let mut cfg = small_config();
        cfg.sites = Vec::new();
        assert!(matches!(
            PassiveCampaign::new(cfg).run(&opts()),
            Err(SatIotError::EmptyPassList { .. })
        ));
        let mut cfg = small_config();
        cfg.constellations = Vec::new();
        assert!(matches!(
            PassiveCampaign::new(cfg).run(&opts()),
            Err(SatIotError::EmptyPassList { .. })
        ));
    }

    #[test]
    fn degenerate_vanilla_dwell_is_rejected() {
        for dwell_s in [0.0, -60.0, f64::NAN] {
            let mut cfg = small_config();
            cfg.scheduler = SchedulerKind::Vanilla { dwell_s };
            assert!(matches!(
                PassiveCampaign::new(cfg).run(&opts()),
                Err(SatIotError::InvalidConfig {
                    field: "dwell_s",
                    ..
                })
            ));
        }
    }

    /// The bounded-memory aggregate sink must retain zero traces while
    /// producing sketches identical to the full-trace run's (both sinks
    /// observe the same decode stream in the same order).
    #[test]
    fn aggregate_sink_retains_nothing_and_matches_full_run() {
        use crate::sink::SinkMode;
        use satiot_measure::stats::nearest_rank_sorted;

        let campaign = PassiveCampaign::new(small_config());
        let full = campaign.run(&opts()).unwrap();
        let agg = campaign
            .run(&opts().with_sink(SinkMode::Aggregate))
            .unwrap();

        assert!(agg.traces.is_empty(), "aggregate sink retained traces");
        assert_eq!(agg.sink.retained, 0);
        assert_eq!(agg.sink.emitted, full.traces.len() as u64);
        assert_eq!(full.sink.retained, full.sink.emitted);
        // Same decode stream → identical sketches (bitwise: PartialEq).
        let full_sketch = full.sketch.as_ref().expect("full run sketches too");
        let agg_sketch = agg.sketch.as_ref().expect("aggregate sketch");
        assert_eq!(full_sketch, agg_sketch);

        // Sketch quantiles sit within the documented band of the exact
        // nearest-rank percentiles of the retained traces.
        let mut rssi = full.traces.rssi_of("FOSSA");
        rssi.sort_by(|a, b| a.total_cmp(b));
        let sketch = &agg_sketch
            .constellation("FOSSA")
            .expect("FOSSA group")
            .rssi_dbm;
        for p in [10.0, 50.0, 90.0] {
            let exact = nearest_rank_sorted(&rssi, p);
            let est = sketch.quantiles.quantile(p);
            assert!(
                (est - exact).abs() <= sketch.quantiles.width() / 2.0 + 1e-9,
                "p{p}: sketch {est} vs exact {exact}"
            );
        }
        // Passes and faults are sink-independent.
        assert_eq!(full.passes.len(), agg.passes.len());
        assert_eq!(full.faults, agg.faults);
    }

    /// The null sink drops everything but still counts emissions, and
    /// the aggregate is identical across serial and pooled drivers.
    #[test]
    fn null_sink_and_pooled_aggregate_are_consistent() {
        use crate::sink::SinkMode;

        let campaign = PassiveCampaign::new(small_config());
        let null = campaign.run(&opts().with_sink(SinkMode::Null)).unwrap();
        assert!(null.traces.is_empty());
        assert!(null.sketch.is_none());
        assert!(null.sink.emitted > 0, "null sink still counts emissions");
        assert_eq!(null.sink.retained, 0);

        let mut cfg = small_config();
        cfg.sites = measurement_sites()
            .into_iter()
            .filter(|s| matches!(s.code, "HK" | "GZ"))
            .collect();
        cfg.max_days = 1.0;
        let serial = PassiveCampaign::new(cfg.clone())
            .run(&opts().with_sink(SinkMode::Aggregate))
            .unwrap();
        cfg.parallel = true;
        let pooled = PassiveCampaign::new(cfg)
            .run(&opts().with_sink(SinkMode::Aggregate))
            .unwrap();
        // Shards merge in configuration order: bit-identical aggregates.
        assert_eq!(serial.sketch, pooled.sketch);
        assert_eq!(serial.sink, pooled.sink);
    }

    /// A damaged site degrades the campaign (skipped + counted) instead
    /// of poisoning it; the healthy sites still produce output, and the
    /// accounting is identical across the serial and pooled drivers.
    #[test]
    fn damaged_site_is_skipped_and_counted() {
        let mut broken = hk_site();
        broken.lat_deg = f64::NAN;
        let mut cfg = small_config();
        cfg.sites = vec![hk_site(), broken];
        let serial = PassiveCampaign::new(cfg.clone()).run(&opts()).unwrap();
        cfg.parallel = true;
        let pooled = PassiveCampaign::new(cfg).run(&opts()).unwrap();
        for r in [&serial, &pooled] {
            assert_eq!(r.faults.skipped_sites, 1, "{}", r.faults);
            assert!(!r.traces.is_empty(), "healthy site produced nothing");
        }
        assert_eq!(serial.faults, pooled.faults);
        assert_eq!(serial.traces.len(), pooled.traces.len());
    }
}
