//! The typed error spine of the campaign pipeline.
//!
//! The paper's headline finding is that satellite IoT links are
//! intermittent and failure-dominated; a credible emulator of such a
//! system must itself degrade gracefully when handed degenerate inputs.
//! This module supplies the two halves of that contract:
//!
//! * [`SatIotError`] — the typed error every campaign entry point
//!   ([`crate::PassiveCampaign`], [`crate::ActiveCampaign`], and the
//!   fallible [`satiot_orbit::pass::PassPredictor::try_passes`]) returns
//!   instead of panicking. Hard failures (a config field that makes the
//!   simulation meaningless, a catalog whose elements cannot build) are
//!   reported here.
//! * [`FaultLog`] — deterministic degradation accounting for *soft*
//!   failures: inputs the pipeline can survive by dropping or clamping
//!   the offending item (a NaN pass time, a corrupted sequence number, a
//!   site with an inverted time range). Every recorded fault is mirrored
//!   into a `satiot_obs` counter (`core.faults.*`, visible under
//!   `SATIOT_METRICS=1`), and the log itself is merged per site in
//!   configuration order, so serial and pooled campaign drivers produce
//!   bit-identical accounting — the invariant `chaos_smoke` pins.

use core::fmt;
use satiot_obs::metrics::Counter;
use satiot_orbit::error::OrbitError;

/// Errors produced by the campaign pipeline.
///
/// Every variant is a *hard* failure: the requested campaign cannot
/// produce meaningful output, so the driver returns early instead of
/// running with silently corrupted inputs. Recoverable input damage is
/// instead counted in [`FaultLog`] and the run continues.
#[derive(Debug, Clone, PartialEq)]
pub enum SatIotError {
    /// Geometry degenerated beyond what the pipeline can clamp (e.g. a
    /// site location that is not a point on Earth).
    DegenerateGeometry {
        /// Which computation hit the degenerate geometry.
        context: &'static str,
    },
    /// A stage that requires at least one pass/site/satellite received
    /// an empty list.
    EmptyPassList {
        /// Which input list was empty.
        context: &'static str,
    },
    /// A time quantity (range bound, day count, period) was NaN or
    /// infinite where a finite value is required.
    NonFiniteTime {
        /// Which field carried the non-finite time.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A configuration field violated its contract (zero period,
    /// non-positive dwell, …).
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// The offending value.
        value: f64,
        /// What the contract requires.
        requirement: &'static str,
    },
    /// An orbital-mechanics failure bubbled up from `satiot-orbit`
    /// (unbuildable elements, deep-space orbit, …).
    Orbit {
        /// Which campaign stage was propagating.
        context: &'static str,
        /// The underlying orbit error.
        source: OrbitError,
    },
    /// A name-valued field referenced something that is not in the
    /// catalog (an unknown site code or constellation label), or
    /// carried a name the sweep checkpoint codec cannot represent.
    InvalidName {
        /// The offending field.
        field: &'static str,
        /// The offending name.
        name: String,
        /// Closest catalog entry (case-insensitive edit distance), for
        /// "did you mean" messages; `None` when nothing is plausibly
        /// what the author meant.
        suggestion: Option<&'static str>,
    },
}

impl SatIotError {
    /// Wrap an orbit error with the campaign stage that hit it.
    pub fn orbit(context: &'static str, source: OrbitError) -> SatIotError {
        SatIotError::Orbit { context, source }
    }
}

/// Unified error surface: orbit errors convert with the `?` operator.
/// Prefer [`SatIotError::orbit`] where a campaign stage can name itself;
/// this blanket conversion carries a generic context.
impl From<OrbitError> for SatIotError {
    fn from(source: OrbitError) -> SatIotError {
        SatIotError::Orbit {
            context: "orbit propagation",
            source,
        }
    }
}

/// Scenario-DSL failures surface through the campaign error spine:
/// unknown names keep their typed field/suggestion structure; every
/// other scenario error (parse, validation, IO, version) is carried as
/// an [`SatIotError::InvalidName`] on the `scenario` field with the
/// full rendered message as the name payload, so nothing is lost
/// crossing the crate boundary.
impl From<satiot_scenarios::ScenarioError> for SatIotError {
    fn from(e: satiot_scenarios::ScenarioError) -> SatIotError {
        use satiot_scenarios::ScenarioError;
        match e {
            ScenarioError::UnknownName {
                field,
                name,
                suggestion,
            } => SatIotError::InvalidName {
                field,
                name,
                suggestion,
            },
            other => SatIotError::InvalidName {
                field: "scenario",
                name: other.to_string(),
                suggestion: None,
            },
        }
    }
}

impl fmt::Display for SatIotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatIotError::DegenerateGeometry { context } => {
                write!(f, "{context}: degenerate geometry")
            }
            SatIotError::EmptyPassList { context } => {
                write!(f, "{context}: empty input list")
            }
            SatIotError::NonFiniteTime { context, value } => {
                write!(f, "{context}: non-finite time {value}")
            }
            SatIotError::InvalidConfig {
                field,
                value,
                requirement,
            } => write!(
                f,
                "config field `{field}` = {value} violates: {requirement}"
            ),
            SatIotError::Orbit { context, source } => {
                write!(f, "{context}: orbit error: {source}")
            }
            SatIotError::InvalidName {
                field,
                name,
                suggestion,
            } => {
                write!(f, "config field `{field}`: unusable name {name:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SatIotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SatIotError::Orbit { source, .. } => Some(source),
            _ => None,
        }
    }
}

// Degradation counters mirrored from every FaultLog record (metrics).
static NAN_PASS_TIMES: Counter = Counter::new("core.faults.nan_pass_times");
static DEGENERATE_PASSES: Counter = Counter::new("core.faults.degenerate_passes");
static SKIPPED_SITES: Counter = Counter::new("core.faults.skipped_sites");
static CORRUPT_SEQS: Counter = Counter::new("core.faults.corrupt_seqs_dropped");
static SGP4_FAILURES: Counter = Counter::new("core.faults.sgp4_failures");
static CLAMPED_CONFIGS: Counter = Counter::new("core.faults.clamped_configs");
static SINK_IO_ERRORS: Counter = Counter::new("core.faults.sink_io_errors");

/// One class of recoverable input damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A candidate pass carried a NaN AOS/LOS/TCA and was dropped
    /// before sorting.
    NanPassTime,
    /// A pass with zero, negative, or non-finite duration was skipped.
    DegeneratePass,
    /// A site whose simulated range was empty or inverted was skipped.
    SkippedSite,
    /// A wire-path sequence number indexed outside the record table and
    /// the packet was dropped.
    CorruptSeq,
    /// A satellite whose elements failed to build was excluded.
    Sgp4Failure,
    /// An out-of-range config value was clamped into its domain.
    ClampedConfig,
    /// A spill-sink write failed; the shard degraded to null behaviour
    /// (traces counted but no longer archived) instead of panicking.
    SinkIo,
}

impl Fault {
    fn counter(self) -> &'static Counter {
        match self {
            Fault::NanPassTime => &NAN_PASS_TIMES,
            Fault::DegeneratePass => &DEGENERATE_PASSES,
            Fault::SkippedSite => &SKIPPED_SITES,
            Fault::CorruptSeq => &CORRUPT_SEQS,
            Fault::Sgp4Failure => &SGP4_FAILURES,
            Fault::ClampedConfig => &CLAMPED_CONFIGS,
            Fault::SinkIo => &SINK_IO_ERRORS,
        }
    }
}

/// Deterministic per-run accounting of recoverable input damage.
///
/// Campaign drivers thread one `FaultLog` through their phases (merging
/// per-site partials in configuration order), so two runs of the same
/// configuration — serial or pooled — report bit-identical counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Candidate passes dropped for NaN times.
    pub nan_pass_times: u64,
    /// Degenerate (zero/negative/non-finite duration) passes skipped.
    pub degenerate_passes: u64,
    /// Sites skipped for empty or inverted simulated ranges.
    pub skipped_sites: u64,
    /// Wire-path sequence numbers dropped as out of range.
    pub corrupt_seqs: u64,
    /// Satellites excluded because their elements failed to build.
    pub sgp4_failures: u64,
    /// Config values clamped into their domain.
    pub clamped_configs: u64,
    /// Spill-sink IO failures survived by degrading to null behaviour.
    pub sink_io_errors: u64,
}

impl FaultLog {
    /// Record one fault: bumps the matching field *and* the mirrored
    /// `core.faults.*` obs counter.
    pub fn record(&mut self, fault: Fault) {
        self.record_n(fault, 1);
    }

    /// Record `n` occurrences of one fault class.
    pub fn record_n(&mut self, fault: Fault, n: u64) {
        if n == 0 {
            return;
        }
        let slot = match fault {
            Fault::NanPassTime => &mut self.nan_pass_times,
            Fault::DegeneratePass => &mut self.degenerate_passes,
            Fault::SkippedSite => &mut self.skipped_sites,
            Fault::CorruptSeq => &mut self.corrupt_seqs,
            Fault::Sgp4Failure => &mut self.sgp4_failures,
            Fault::ClampedConfig => &mut self.clamped_configs,
            Fault::SinkIo => &mut self.sink_io_errors,
        };
        *slot += n;
        fault.counter().add(n);
    }

    /// Fold another log into this one (per-site partials merge in site
    /// order; addition is commutative, so the merged totals are
    /// order-independent anyway).
    pub fn merge(&mut self, other: &FaultLog) {
        self.nan_pass_times += other.nan_pass_times;
        self.degenerate_passes += other.degenerate_passes;
        self.skipped_sites += other.skipped_sites;
        self.corrupt_seqs += other.corrupt_seqs;
        self.sgp4_failures += other.sgp4_failures;
        self.clamped_configs += other.clamped_configs;
        self.sink_io_errors += other.sink_io_errors;
    }

    /// Total recorded faults across every class.
    pub fn total(&self) -> u64 {
        self.nan_pass_times
            + self.degenerate_passes
            + self.skipped_sites
            + self.corrupt_seqs
            + self.sgp4_failures
            + self.clamped_configs
            + self.sink_io_errors
    }

    /// Whether the run saw no input damage at all.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults: nan_times={} degenerate={} skipped_sites={} corrupt_seqs={} \
             sgp4={} clamped={} sink_io={}",
            self.nan_pass_times,
            self.degenerate_passes,
            self.skipped_sites,
            self.corrupt_seqs,
            self.sgp4_failures,
            self.clamped_configs,
            self.sink_io_errors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_field() {
        let e = SatIotError::InvalidConfig {
            field: "period_s",
            value: 0.0,
            requirement: "finite and > 0",
        };
        let text = e.to_string();
        assert!(text.contains("period_s") && text.contains("finite"));

        let e = SatIotError::NonFiniteTime {
            context: "ActiveConfig.days",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("ActiveConfig.days"));
    }

    #[test]
    fn orbit_errors_carry_a_source() {
        use std::error::Error;
        let e = SatIotError::orbit("farm passes", OrbitError::MeanMotionNonPositive);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("mean motion"));
    }

    #[test]
    fn orbit_errors_convert_via_from() {
        let e: SatIotError = OrbitError::MeanMotionNonPositive.into();
        assert!(matches!(e, SatIotError::Orbit { .. }));
        assert!(e.to_string().contains("orbit"));
    }

    #[test]
    fn fault_log_records_merges_and_totals() {
        let mut a = FaultLog::default();
        assert!(a.is_clean());
        a.record(Fault::NanPassTime);
        a.record_n(Fault::CorruptSeq, 3);
        a.record_n(Fault::DegeneratePass, 0); // No-op.
        let mut b = FaultLog::default();
        b.record(Fault::SkippedSite);
        b.record(Fault::Sgp4Failure);
        b.record(Fault::ClampedConfig);
        a.merge(&b);
        assert_eq!(a.nan_pass_times, 1);
        assert_eq!(a.corrupt_seqs, 3);
        assert_eq!(a.skipped_sites, 1);
        assert_eq!(a.total(), 7);
        assert!(!a.is_clean());
        let text = a.to_string();
        assert!(text.contains("corrupt_seqs=3"), "{text}");
    }
}
