//! The subscriber server: the Hong Kong endpoint of the paper's active
//! deployment (Appendix B).
//!
//! The server receives packets forwarded by the operator's data centre,
//! deduplicates them on their application sequence IDs (ACK-loss
//! retransmissions arrive as duplicates), and keeps the arrival log the
//! paper's reliability and latency methodology is built on.

use std::collections::HashMap;

/// One logged delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Originating node.
    pub node_id: u32,
    /// First arrival time of this sequence, s.
    pub first_arrival_s: f64,
    /// Copies received (1 = no duplicates).
    pub copies: u32,
}

/// The server's arrival log.
///
/// ```
/// use satiot_core::server::DeliveryLog;
///
/// let mut log = DeliveryLog::new();
/// assert!(log.record(7, 0, 120.0));   // First copy.
/// assert!(!log.record(7, 0, 500.0));  // ACK-loss duplicate.
/// assert_eq!(log.delivered(), 1);
/// assert_eq!(log.get(7).unwrap().first_arrival_s, 120.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeliveryLog {
    deliveries: HashMap<u64, Delivery>,
    /// Total packet arrivals including duplicates.
    pub arrivals: u64,
}

impl DeliveryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an arrival. Returns `true` when the sequence is new,
    /// `false` for a duplicate (which only bumps the copy counter and
    /// never moves the first-arrival timestamp — the dedup rule that
    /// keeps ACK-loss retransmissions out of the latency statistics).
    pub fn record(&mut self, seq: u64, node_id: u32, arrival_s: f64) -> bool {
        self.arrivals += 1;
        match self.deliveries.get_mut(&seq) {
            Some(d) => {
                d.copies += 1;
                // Out-of-order duplicates can even precede the logged
                // arrival (different satellites, different contact
                // plans); keep the earliest.
                if arrival_s < d.first_arrival_s {
                    d.first_arrival_s = arrival_s;
                }
                false
            }
            None => {
                self.deliveries.insert(
                    seq,
                    Delivery {
                        node_id,
                        first_arrival_s: arrival_s,
                        copies: 1,
                    },
                );
                true
            }
        }
    }

    /// Distinct sequences delivered.
    pub fn delivered(&self) -> usize {
        self.deliveries.len()
    }

    /// The delivery record for `seq`, if it arrived.
    pub fn get(&self, seq: u64) -> Option<&Delivery> {
        self.deliveries.get(&seq)
    }

    /// Delivered sequence IDs as a set (for `satiot-measure`'s
    /// reliability analysis).
    pub fn delivered_seqs(&self) -> std::collections::HashSet<u64> {
        self.deliveries.keys().copied().collect()
    }

    /// Duplicate arrivals (total copies beyond the first of each seq).
    pub fn duplicate_arrivals(&self) -> u64 {
        self.arrivals - self.deliveries.len() as u64
    }

    /// Fraction of delivered sequences that arrived more than once — the
    /// server-side view of the paper's ACK-loss observation.
    pub fn duplicate_ratio(&self) -> f64 {
        if self.deliveries.is_empty() {
            return 0.0;
        }
        self.deliveries.values().filter(|d| d.copies > 1).count() as f64
            / self.deliveries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_arrival_wins() {
        let mut log = DeliveryLog::new();
        assert!(log.record(7, 1, 100.0));
        assert!(!log.record(7, 1, 200.0));
        let d = log.get(7).unwrap();
        assert_eq!(d.first_arrival_s, 100.0);
        assert_eq!(d.copies, 2);
        assert_eq!(log.delivered(), 1);
        assert_eq!(log.arrivals, 2);
        assert_eq!(log.duplicate_arrivals(), 1);
    }

    #[test]
    fn out_of_order_duplicate_moves_first_arrival_back() {
        let mut log = DeliveryLog::new();
        log.record(7, 1, 200.0);
        log.record(7, 1, 150.0);
        assert_eq!(log.get(7).unwrap().first_arrival_s, 150.0);
    }

    #[test]
    fn duplicate_ratio_counts_sequences_not_copies() {
        let mut log = DeliveryLog::new();
        log.record(1, 0, 10.0);
        log.record(2, 0, 20.0);
        log.record(2, 0, 21.0);
        log.record(2, 0, 22.0);
        // 1 of 2 sequences duplicated, regardless of copy count.
        assert!((log.duplicate_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(log.duplicate_arrivals(), 2);
    }

    #[test]
    fn delivered_seqs_feed_the_reliability_analysis() {
        let mut log = DeliveryLog::new();
        log.record(3, 0, 1.0);
        log.record(9, 1, 2.0);
        let set = log.delivered_seqs();
        assert!(set.contains(&3) && set.contains(&9));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn empty_log() {
        let log = DeliveryLog::new();
        assert_eq!(log.delivered(), 0);
        assert_eq!(log.duplicate_ratio(), 0.0);
        assert!(log.get(1).is_none());
    }
}
