//! # satiot-core
//!
//! The reproduced paper's system: the Direct-to-Satellite IoT pipeline
//! end to end, plus the two measurement campaigns run against it.
//!
//! * [`calib`] — every calibration constant in one place, each annotated
//!   with the paper observation it is fitted against.
//! * [`messages`] — the DtS application protocol: beacons, uplinks, ACKs,
//!   encoded through the `satiot-phy` frame codec.
//! * [`buffer`] — the store-and-forward buffer used by nodes (awaiting a
//!   pass) and satellites (awaiting a ground station).
//! * [`error`] — the typed error spine ([`SatIotError`]) plus the
//!   graceful-degradation ledger ([`FaultLog`]): campaign entry points
//!   return `Result` for unusable configs and *count* recoverable input
//!   damage instead of panicking.
//! * [`geometry`] — sampled pass geometry shared by both campaigns.
//! * [`scheduler`] — ground-station → satellite assignment: the paper's
//!   customised predictive scheduler and the vanilla TinyGS baseline.
//! * [`passive`] — the 27-station, 8-site, 4-constellation passive
//!   campaign (paper §2.2/§3.1): produces beacon traces and contact
//!   windows.
//! * [`node`] — the Tianqi-node state machine (sleep / scheduled listen /
//!   transmit, with ≤ 5 backoff-gated retransmissions).
//! * [`satellite`] — the satellite payload: uplink reception, buffering,
//!   and downlink at ground-station contacts.
//! * [`station`] — crowd-sourced ground-station availability (correlated
//!   up/down spells of $30 hobbyist hardware).
//! * [`server`] — the subscriber server's deduplicating arrival log
//!   (the paper's Appendix B methodology).
//! * [`active`] — the one-month active deployment (paper §2.3/§3.2):
//!   three nodes on a Yunnan farm sending 20 B every 30 min through the
//!   Tianqi constellation to a Hong Kong server.
//! * [`sweep`] — the process-wide pass-prediction cache shared by both
//!   campaigns, the theoretical-availability analysis, and the
//!   bench/ablation binaries; paired with `satiot_sim::pool` it turns
//!   campaign setup into one cached parallel sweep.
//! * [`sink`] — pluggable trace sinks ([`SinkMode`]): where the
//!   simulate phase routes decoded beacons — full in-RAM retention,
//!   bounded-memory streaming sketches, disk spill, or nothing.
//! * [`options`] — typed run options ([`RunOptions`]): the single place
//!   the `SATIOT_*` environment knobs are parsed, and the typed argument
//!   both campaign `run` entry points take.
//! * [`prelude`] — one-stop imports for binaries and examples.

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod active;
pub mod buffer;
pub mod calib;
pub mod error;
pub mod geometry;
pub mod messages;
pub mod node;
pub mod options;
pub mod passive;
pub mod prelude;
pub mod satellite;
pub mod scheduler;
pub mod server;
pub mod sink;
pub mod station;
pub mod sweep;
pub mod sweep_server;

pub use active::{ActiveCampaign, ActiveConfig, ActiveResults};
pub use error::{Fault, FaultLog, SatIotError};
pub use options::{BatchMode, RunOptions, Scale};
pub use passive::{PassiveCampaign, PassiveConfig, PassiveResults};
pub use sink::{SinkMode, SinkStats, TraceSink};
