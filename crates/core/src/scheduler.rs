//! Ground-station → satellite assignment.
//!
//! Vanilla TinyGS decides which station listens to which satellite with
//! an opaque internal algorithm that is unaware of the operator's
//! measurement goals (paper §2.2). The authors replaced it with a
//! customised scheduler that tracks satellite positions and retunes
//! stations ahead of each pass. Both are modelled here:
//!
//! * [`PredictiveScheduler`] — knows the pass list in advance and greedily
//!   packs passes onto free stations (the paper's customised scheduler).
//! * [`VanillaScheduler`] — each station cycles through the compatible
//!   satellite list on a fixed dwell, blind to the geometry; it covers a
//!   pass only when its rotation happens to point at the right satellite.
//!
//! The ablation `exp_ablation_scheduler` quantifies the difference.

use satiot_orbit::pass::Pass;
use satiot_orbit::time::JulianDate;

/// A pass of a specific satellite over the site being scheduled.
#[derive(Debug, Clone, Copy)]
pub struct CandidatePass {
    /// Index of the satellite in the site's target list.
    pub sat_index: usize,
    /// The predicted pass.
    pub pass: Pass,
}

/// A scheduled listening interval: station `station` listens for
/// `sat_index` during `[start, end]` (a sub-interval of pass `pass_idx`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// Index into the candidate-pass list.
    pub pass_idx: usize,
    /// Station that listens.
    pub station: u32,
    /// Coverage start.
    pub start: JulianDate,
    /// Coverage end.
    pub end: JulianDate,
}

impl Coverage {
    /// Covered duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end.seconds_since(self.start)
    }
}

/// A station-assignment policy.
pub trait Scheduler {
    /// Produce listening intervals for `stations` stations over the
    /// candidate passes (which must be sorted by AOS).
    fn schedule(&self, passes: &[CandidatePass], stations: u32) -> Vec<Coverage>;
}

/// The paper's customised scheduler: greedy interval packing with full
/// pass knowledge.
///
/// ```
/// use satiot_core::scheduler::{CandidatePass, PredictiveScheduler, Scheduler};
/// use satiot_orbit::pass::Pass;
/// use satiot_orbit::time::JulianDate;
///
/// let jd = |s: f64| JulianDate(2_460_000.0 + s / 86_400.0);
/// let pass = |sat, start: f64| CandidatePass {
///     sat_index: sat,
///     pass: Pass { aos: jd(start), los: jd(start + 600.0), tca: jd(start + 300.0),
///                  max_elevation_rad: 0.5, tca_range_km: 900.0 },
/// };
/// // Two simultaneous passes, one station: only one can be covered.
/// let coverage = PredictiveScheduler.schedule(&[pass(0, 0.0), pass(1, 100.0)], 1);
/// assert_eq!(coverage.len(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PredictiveScheduler;

impl Scheduler for PredictiveScheduler {
    fn schedule(&self, passes: &[CandidatePass], stations: u32) -> Vec<Coverage> {
        let mut busy_until: Vec<JulianDate> = vec![JulianDate(f64::MIN); stations as usize];
        let mut out = Vec::new();
        for (idx, cp) in passes.iter().enumerate() {
            // Earliest-free station that is free before this AOS.
            let mut best: Option<usize> = None;
            for (s, until) in busy_until.iter().enumerate() {
                if *until <= cp.pass.aos {
                    match best {
                        None => best = Some(s),
                        Some(b) if busy_until[s] < busy_until[b] => best = Some(s),
                        _ => {}
                    }
                }
            }
            if let Some(s) = best {
                busy_until[s] = cp.pass.los;
                out.push(Coverage {
                    pass_idx: idx,
                    station: s as u32,
                    start: cp.pass.aos,
                    end: cp.pass.los,
                });
            }
        }
        out
    }
}

/// Vanilla TinyGS: each station rotates through `n_targets` satellites
/// with a fixed dwell, starting from a per-station offset.
#[derive(Debug, Clone, Copy)]
pub struct VanillaScheduler {
    /// Seconds a station stays tuned to one satellite.
    pub dwell_s: f64,
    /// Number of satellites in the rotation.
    pub n_targets: usize,
    /// Rotation origin (stations share a common epoch).
    pub origin: JulianDate,
}

impl VanillaScheduler {
    /// Which satellite station `s` listens to at `t`.
    pub fn tuned_target(&self, station: u32, t: JulianDate) -> usize {
        if self.n_targets == 0 {
            return 0;
        }
        let slot = (t.seconds_since(self.origin) / self.dwell_s).floor() as i64;
        // Stagger stations so they do not all point at the same satellite.
        let stagger = station as i64 * (self.n_targets as i64 / 2 + 1);
        (slot + stagger).rem_euclid(self.n_targets as i64) as usize
    }
}

impl Scheduler for VanillaScheduler {
    fn schedule(&self, passes: &[CandidatePass], stations: u32) -> Vec<Coverage> {
        let mut out = Vec::new();
        if self.n_targets == 0 || self.dwell_s <= 0.0 {
            return out;
        }
        for (idx, cp) in passes.iter().enumerate() {
            for station in 0..stations {
                // Walk the dwell slots overlapping this pass.
                let rel_start = cp.pass.aos.seconds_since(self.origin);
                let rel_end = cp.pass.los.seconds_since(self.origin);
                let first_slot = (rel_start / self.dwell_s).floor() as i64;
                let last_slot = (rel_end / self.dwell_s).floor() as i64;
                for slot in first_slot..=last_slot {
                    let slot_start = slot as f64 * self.dwell_s;
                    let slot_end = slot_start + self.dwell_s;
                    let t_probe = self.origin.plus_seconds(slot_start.max(rel_start) + 0.001);
                    if self.tuned_target(station, t_probe) == cp.sat_index {
                        let start = self.origin.plus_seconds(slot_start.max(rel_start));
                        let end = self.origin.plus_seconds(slot_end.min(rel_end));
                        if end.seconds_since(start) > 1.0 {
                            out.push(Coverage {
                                pass_idx: idx,
                                station,
                                start,
                                end,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jd(s: f64) -> JulianDate {
        JulianDate(2_460_000.0 + s / 86_400.0)
    }

    fn pass(sat: usize, start_s: f64, dur_s: f64) -> CandidatePass {
        CandidatePass {
            sat_index: sat,
            pass: Pass {
                aos: jd(start_s),
                los: jd(start_s + dur_s),
                tca: jd(start_s + dur_s / 2.0),
                max_elevation_rad: 0.5,
                tca_range_km: 900.0,
            },
        }
    }

    #[test]
    fn predictive_covers_all_nonoverlapping_passes() {
        let passes = vec![
            pass(0, 0.0, 600.0),
            pass(1, 1_000.0, 600.0),
            pass(2, 2_000.0, 600.0),
        ];
        let cov = PredictiveScheduler.schedule(&passes, 1);
        assert_eq!(cov.len(), 3);
        for (i, c) in cov.iter().enumerate() {
            assert_eq!(c.pass_idx, i);
            assert_eq!(c.station, 0);
            assert!((c.duration_s() - 600.0).abs() < 1e-3);
        }
    }

    #[test]
    fn predictive_drops_conflicts_when_stations_are_scarce() {
        // Two simultaneous passes, one station: only one is covered.
        let passes = vec![pass(0, 0.0, 600.0), pass(1, 100.0, 600.0)];
        let cov = PredictiveScheduler.schedule(&passes, 1);
        assert_eq!(cov.len(), 1);
        // With two stations both are covered.
        let cov2 = PredictiveScheduler.schedule(&passes, 2);
        assert_eq!(cov2.len(), 2);
        assert_ne!(cov2[0].station, cov2[1].station);
    }

    #[test]
    fn predictive_reuses_freed_stations() {
        let passes = vec![
            pass(0, 0.0, 300.0),
            pass(1, 100.0, 300.0),
            pass(2, 350.0, 300.0), // Station 0 is free again at t = 300.
        ];
        let cov = PredictiveScheduler.schedule(&passes, 2);
        assert_eq!(cov.len(), 3);
        assert_eq!(cov[2].station, 0);
    }

    #[test]
    fn vanilla_covers_only_when_tuned() {
        let sched = VanillaScheduler {
            dwell_s: 600.0,
            n_targets: 10,
            origin: jd(0.0),
        };
        // A pass of satellite 0 during slot 0: station 0 is tuned to
        // target 0 in slot 0 (offset 0).
        let passes = vec![pass(0, 10.0, 400.0)];
        let cov = sched.schedule(&passes, 1);
        assert_eq!(cov.len(), 1);
        assert!((cov[0].duration_s() - 400.0).abs() < 1.0);
        // A pass of satellite 5 at the same time is missed by station 0…
        let missed = sched.schedule(&[pass(5, 10.0, 400.0)], 1);
        assert!(missed.is_empty());
    }

    #[test]
    fn vanilla_coverage_is_partial_when_dwell_expires() {
        let sched = VanillaScheduler {
            dwell_s: 300.0,
            n_targets: 4,
            origin: jd(0.0),
        };
        // Pass spans slots 0..2 (0–900 s); station 0 tunes target 0 only
        // during slot 0 → covers at most the first 300 s.
        let passes = vec![pass(0, 0.0, 900.0)];
        let cov = sched.schedule(&passes, 1);
        let total: f64 = cov.iter().map(|c| c.duration_s()).sum();
        assert!(total <= 300.0 + 1.0, "covered {total}");
        assert!(total > 0.0);
    }

    #[test]
    fn vanilla_beats_zero_with_many_stations() {
        let sched = VanillaScheduler {
            dwell_s: 600.0,
            n_targets: 4,
            origin: jd(0.0),
        };
        // With ≥ 4 staggered stations, some station is tuned to sat 2.
        let passes = vec![pass(2, 0.0, 500.0)];
        let cov = sched.schedule(&passes, 4);
        assert!(!cov.is_empty());
    }

    #[test]
    fn predictive_beats_vanilla_on_coverage() {
        // A day of staggered passes from 10 satellites.
        let mut passes = Vec::new();
        for k in 0..40 {
            passes.push(pass(k % 10, k as f64 * 2_000.0, 600.0));
        }
        let pred: f64 = PredictiveScheduler
            .schedule(&passes, 3)
            .iter()
            .map(|c| c.duration_s())
            .sum();
        let vanilla: f64 = VanillaScheduler {
            dwell_s: 600.0,
            n_targets: 10,
            origin: jd(0.0),
        }
        .schedule(&passes, 3)
        .iter()
        .map(|c| c.duration_s())
        .sum();
        assert!(
            pred > 2.0 * vanilla,
            "predictive {pred} vs vanilla {vanilla}"
        );
    }

    #[test]
    fn degenerate_vanilla_configs_yield_nothing() {
        let passes = vec![pass(0, 0.0, 100.0)];
        let no_targets = VanillaScheduler {
            dwell_s: 600.0,
            n_targets: 0,
            origin: jd(0.0),
        };
        assert!(no_targets.schedule(&passes, 2).is_empty());
        let no_dwell = VanillaScheduler {
            dwell_s: 0.0,
            n_targets: 5,
            origin: jd(0.0),
        };
        assert!(no_dwell.schedule(&passes, 2).is_empty());
    }
}
