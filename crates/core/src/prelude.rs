//! One-stop imports for campaign binaries and examples.
//!
//! The bench/reproduction binaries used to deep-import half a dozen
//! module paths each (`satiot_core::passive::PassiveCampaign`,
//! `satiot_core::sweep::PassKey`, …). The prelude flattens the public
//! campaign surface so a binary needs exactly one line:
//!
//! ```
//! use satiot_core::prelude::*;
//!
//! let mut spec = ScenarioSpec::tianqi_hk();
//! spec.max_days = Some(0.2);
//! let scenario = spec.build().expect("catalog names resolve");
//! let opts = RunOptions::default();
//! let results =
//!     PassiveCampaign::new(PassiveConfig::from_scenario(&scenario)).run(&opts);
//! assert!(results.is_ok());
//! ```

pub use crate::active::{ActiveCampaign, ActiveConfig, ActiveResults};
pub use crate::error::{Fault, FaultLog, SatIotError};
pub use crate::options::{BatchMode, RunOptions, Scale};
pub use crate::passive::{PassiveCampaign, PassiveConfig, PassiveResults, SchedulerKind};
pub use crate::sink::{SinkMode, SinkStats};
pub use crate::sweep::PassKey;
pub use crate::sweep_server::{
    CacheAttribution, ConstellationOutcome, JobRecord, SweepConfig, SweepJob, SweepOutcome,
    SweepServer,
};
pub use satiot_orbit::cull::CullingMode;
pub use satiot_orbit::ephemeris::EphemerisMode;
pub use satiot_orbit::visibility::VisibilityMode;
pub use satiot_scenarios::{
    ConstellationRef, MobilityTrack, OutageWindow, ResolvedScenario, ScenarioError, ScenarioSpec,
    SiteRef, SiteSpec, TerrestrialSpec, TrafficSpec, Waypoint,
};
