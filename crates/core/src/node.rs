//! The Tianqi-node protocol state machine.
//!
//! A node (paper §2.3) stores sensor data and listens for gateway beacons
//! whenever data is pending **and the operator's pass schedule says a
//! usable satellite is overhead** — commercial DtS services distribute
//! pass predictions to their nodes, which is what keeps the radio's Rx
//! residency at hours, not days, per week (the paper's §3.2 energy
//! observations). On hearing a beacon the node transmits the oldest
//! packet, waits for an ACK, and retransmits on a later beacon — backing
//! off after a timeout — up to five times.
//!
//! The machine is pure protocol logic over simulation-seconds; geometry
//! and link sampling are wired in by [`crate::active`], which keeps every
//! transition unit-testable.

use crate::buffer::{DropPolicy, StoreAndForward};
use crate::calib;

/// A sensor packet awaiting DtS transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingPacket {
    /// Application sequence ID.
    pub seq: u64,
    /// Generation time, s.
    pub generated_s: f64,
    /// DtS transmission attempts so far.
    pub attempts: u32,
    /// First transmission attempt time, if any.
    pub first_tx_s: Option<f64>,
}

/// What the node decides to do upon hearing a beacon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BeaconReaction {
    /// Nothing to send (buffer empty or already waiting for an ACK).
    Idle,
    /// Transmit the head packet (seq, attempt number starting at 1).
    Transmit {
        /// Sequence ID to send.
        seq: u64,
        /// 1-based attempt counter.
        attempt: u32,
    },
}

/// Node radio/protocol state.
///
/// ```
/// use satiot_core::node::{BeaconReaction, NodeMachine};
///
/// let mut node = NodeMachine::new(0);
/// node.listen_plan = vec![(100.0, 400.0)];
/// node.on_data(42, 0.0);
/// assert!(node.is_listening(150.0));              // Scheduled pass.
/// assert!(!node.is_listening(500.0));             // Outside the plan.
/// match node.on_beacon(150.0, 400.0) {
///     BeaconReaction::Transmit { seq, attempt } => {
///         assert_eq!((seq, attempt), (42, 1));
///     }
///     BeaconReaction::Idle => unreachable!("data is pending"),
/// }
/// ```
#[derive(Debug)]
pub struct NodeMachine {
    /// Node identifier.
    pub id: u32,
    /// Operator-provided listen plan: sorted, non-overlapping intervals
    /// (campaign seconds) during which a usable pass is predicted. The
    /// node only opens its receiver inside these windows (plus active
    /// engagements/ACK waits).
    pub listen_plan: Vec<(f64, f64)>,
    /// Store-and-forward buffer.
    pub buffer: StoreAndForward<PendingPacket>,
    /// Engaged (continuous Rx) until this time, if a beacon was heard.
    pub engaged_until_s: Option<f64>,
    /// Waiting for an ACK for (seq, timeout deadline).
    pub awaiting_ack: Option<(u64, f64)>,
    /// Sniffing suppressed until this time (post-timeout backoff).
    pub backoff_until_s: Option<f64>,
    /// Packets abandoned after exhausting retransmissions.
    pub gave_up: Vec<PendingPacket>,
    /// Completed packets (ACKed), with their final attempt counts.
    pub completed: Vec<PendingPacket>,
    // --- Residency integrals for energy accounting. ---
    /// Closed intervals during which data was pending and the node was
    /// not engaged, s.
    pending_intervals: Vec<(f64, f64)>,
    /// Time engaged in continuous Rx, s.
    pub engaged_s: f64,
    /// Cumulative transmit airtime, s.
    pub tx_airtime_s: f64,
    /// Internal: when the buffer last became non-empty (open interval).
    pending_since_s: Option<f64>,
    /// Internal: when the current engagement started.
    engaged_since_s: Option<f64>,
    /// Maximum attempts per packet (first + retransmissions).
    max_attempts: u32,
}

impl NodeMachine {
    /// A node with the calibrated defaults and an empty listen plan
    /// (set [`NodeMachine::listen_plan`] before simulating).
    pub fn new(id: u32) -> NodeMachine {
        Self::with_limits(
            id,
            calib::NODE_BUFFER_CAPACITY,
            1 + calib::MAX_RETRANSMISSIONS,
        )
    }

    /// A node with explicit buffer capacity and attempt limit (for the
    /// retransmission/buffer ablations).
    pub fn with_limits(id: u32, buffer_capacity: usize, max_attempts: u32) -> NodeMachine {
        NodeMachine {
            id,
            listen_plan: Vec::new(),
            buffer: StoreAndForward::new(buffer_capacity, DropPolicy::DropOldest),
            engaged_until_s: None,
            awaiting_ack: None,
            backoff_until_s: None,
            gave_up: Vec::new(),
            completed: Vec::new(),
            pending_intervals: Vec::new(),
            engaged_s: 0.0,
            tx_airtime_s: 0.0,
            pending_since_s: None,
            engaged_since_s: None,
            max_attempts: max_attempts.max(1),
        }
    }

    /// New sensor data generated at `t`.
    pub fn on_data(&mut self, seq: u64, t: f64) {
        self.settle_engagement(t);
        if self.buffer.is_empty()
            && self.pending_since_s.is_none()
            && self.engaged_until_s.is_none()
        {
            self.pending_since_s = Some(t);
        }
        self.buffer.push(PendingPacket {
            seq,
            generated_s: t,
            attempts: 0,
            first_tx_s: None,
        });
    }

    /// Whether `t` falls inside the listen plan.
    pub fn in_plan(&self, t: f64) -> bool {
        let idx = self.listen_plan.partition_point(|&(_, end)| end < t);
        self.listen_plan
            .get(idx)
            .is_some_and(|&(start, _)| t >= start)
    }

    /// Whether the node's receiver is open at `t` (scheduled listening,
    /// engaged with a pass, or awaiting an ACK).
    pub fn is_listening(&self, t: f64) -> bool {
        if let Some(until) = self.engaged_until_s {
            if t <= until {
                return true;
            }
        }
        if let Some((_, deadline)) = self.awaiting_ack {
            if t <= deadline {
                return true;
            }
        }
        if self.buffer.is_empty() {
            return false;
        }
        if let Some(backoff) = self.backoff_until_s {
            if t < backoff {
                return false;
            }
        }
        self.in_plan(t)
    }

    /// A beacon decoded at `t` during a pass lasting until `pass_end_s`:
    /// engage continuous Rx and decide whether to transmit. A node with
    /// nothing to send does not engage.
    pub fn on_beacon(&mut self, t: f64, pass_end_s: f64) -> BeaconReaction {
        self.settle_engagement(t);
        if self.buffer.is_empty() && self.awaiting_ack.is_none() {
            return BeaconReaction::Idle;
        }
        if self.engaged_since_s.is_none() {
            self.close_wait_interval(t);
            self.engaged_since_s = Some(t);
        }
        self.engaged_until_s = Some(pass_end_s.max(t));

        if self.awaiting_ack.is_some() {
            return BeaconReaction::Idle;
        }
        let head = self.buffer.front().expect("checked non-empty above");
        BeaconReaction::Transmit {
            seq: head.seq,
            attempt: head.attempts + 1,
        }
    }

    /// The node started transmitting the head packet at `t` for
    /// `airtime_s`; the ACK deadline starts at transmission end.
    pub fn on_transmit(&mut self, t: f64, airtime_s: f64) {
        self.tx_airtime_s += airtime_s;
        if let Some(head) = self.buffer.front_mut() {
            head.attempts += 1;
            if head.first_tx_s.is_none() {
                head.first_tx_s = Some(t);
            }
            self.awaiting_ack = Some((head.seq, t + airtime_s + calib::ACK_TIMEOUT_S));
        }
    }

    /// An ACK for `seq` decoded at `t`.
    pub fn on_ack(&mut self, seq: u64, t: f64) {
        if let Some((waiting, _)) = self.awaiting_ack {
            if waiting == seq {
                self.awaiting_ack = None;
            }
        }
        if self.buffer.front().map(|p| p.seq) == Some(seq) {
            let done = self.buffer.pop().expect("front just checked");
            self.completed.push(done);
            if self.buffer.is_empty() {
                self.mark_drained(t);
            }
        }
    }

    /// The ACK timeout for `seq` fired at `t` without an ACK.
    ///
    /// Besides clearing the wait, the node *backs off*: it winds the
    /// engagement down and suppresses listening briefly instead of
    /// hammering the same pass — congestion etiquette that pushes most
    /// retries to a later beacon or the next contact, which is what makes
    /// the paper's DtS latency segment minutes long (Fig 5d).
    pub fn on_ack_timeout(&mut self, seq: u64, t: f64) {
        if let Some((waiting, deadline)) = self.awaiting_ack {
            if waiting == seq && t >= deadline - 1e-9 {
                self.awaiting_ack = None;
                if let Some(until) = self.engaged_until_s {
                    self.engaged_until_s = Some(until.min(t + 1.0));
                }
                self.backoff_until_s = Some(t + calib::RETRY_BACKOFF_S);
                // Exhausted? Give the packet up.
                if let Some(head) = self.buffer.front() {
                    if head.seq == seq && head.attempts >= self.max_attempts {
                        let dropped = self.buffer.pop().expect("front just checked");
                        self.gave_up.push(dropped);
                        if self.buffer.is_empty() {
                            self.mark_drained(t);
                        }
                    }
                }
            }
        }
    }

    /// The pass the node was engaged with ended at `t` (LOS).
    pub fn on_pass_end(&mut self, t: f64) {
        self.settle_engagement(t);
    }

    /// Close an expired engagement: book its Rx residency and restart the
    /// pending-wait interval if data is still pending.
    fn settle_engagement(&mut self, t: f64) {
        if let Some(until) = self.engaged_until_s {
            if t >= until {
                if let Some(since) = self.engaged_since_s.take() {
                    self.engaged_s += (until - since).max(0.0);
                }
                self.engaged_until_s = None;
                if !self.buffer.is_empty() && self.pending_since_s.is_none() {
                    self.pending_since_s = Some(until);
                }
            }
        }
    }

    /// Finalise residency integrals at campaign end.
    pub fn finalize(&mut self, t_end: f64) {
        if let Some(until) = self.engaged_until_s {
            self.engaged_until_s = Some(until.min(t_end));
            self.settle_engagement(t_end);
        }
        self.close_wait_interval(t_end);
    }

    /// Radio-on time spent in scheduled (plan) listening outside
    /// engagements, s: the overlap between pending-data intervals and the
    /// listen plan. (Backoff blackouts inside plan windows are counted as
    /// listening — a conservative, tiny overestimate.)
    pub fn plan_rx_s(&self) -> f64 {
        let mut total = 0.0;
        for &(ps, pe) in &self.pending_intervals {
            let mut idx = self.listen_plan.partition_point(|&(_, end)| end < ps);
            while let Some(&(ws, we)) = self.listen_plan.get(idx) {
                if ws > pe {
                    break;
                }
                total += (we.min(pe) - ws.max(ps)).max(0.0);
                idx += 1;
            }
        }
        total
    }

    /// Total time with data pending outside engagements, s.
    pub fn pending_wait_s(&self) -> f64 {
        self.pending_intervals.iter().map(|(s, e)| e - s).sum()
    }

    fn close_wait_interval(&mut self, t: f64) {
        if let Some(since) = self.pending_since_s.take() {
            if t > since {
                self.pending_intervals.push((since, t));
            }
        }
    }

    fn mark_drained(&mut self, t: f64) {
        // Buffer empty: stop waiting, and wind an active engagement down
        // to a short linger instead of listening to the rest of the pass
        // — the power-saving behaviour behind the node's battery life.
        if let Some(until) = self.engaged_until_s {
            self.engaged_until_s = Some(until.min(t + calib::ENGAGED_LINGER_S));
        } else {
            self.pending_since_s = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node whose plan covers [100, 400] and [1 000, 1 300].
    fn planned_node() -> NodeMachine {
        let mut node = NodeMachine::new(0);
        node.listen_plan = vec![(100.0, 400.0), (1_000.0, 1_300.0)];
        node
    }

    #[test]
    fn idle_node_sleeps_even_inside_plan() {
        let node = planned_node();
        for t in [0.0, 150.0, 1_100.0, 9_999.0] {
            assert!(!node.is_listening(t));
        }
    }

    #[test]
    fn pending_data_listens_only_inside_plan() {
        let mut node = planned_node();
        node.on_data(1, 0.0);
        assert!(!node.is_listening(50.0)); // Before the window.
        assert!(node.is_listening(100.0));
        assert!(node.is_listening(399.0));
        assert!(!node.is_listening(500.0)); // Between windows.
        assert!(node.is_listening(1_200.0));
        assert!(!node.is_listening(1_400.0));
    }

    #[test]
    fn in_plan_boundaries() {
        let node = planned_node();
        assert!(!node.in_plan(99.9));
        assert!(node.in_plan(100.0));
        assert!(node.in_plan(400.0));
        assert!(!node.in_plan(400.1));
    }

    #[test]
    fn beacon_engages_and_transmits() {
        let mut node = planned_node();
        node.on_data(42, 0.0);
        let reaction = node.on_beacon(150.0, 400.0);
        assert_eq!(
            reaction,
            BeaconReaction::Transmit {
                seq: 42,
                attempt: 1
            }
        );
        // Engaged: listening continuously until pass end.
        assert!(node.is_listening(250.0));
        node.on_transmit(151.0, 0.5);
        // While awaiting the ACK, further beacons do not retransmit.
        assert_eq!(node.on_beacon(160.0, 400.0), BeaconReaction::Idle);
    }

    #[test]
    fn ack_completes_packet() {
        let mut node = planned_node();
        node.on_data(7, 0.0);
        node.on_beacon(150.0, 400.0);
        node.on_transmit(151.0, 0.5);
        node.on_ack(7, 152.5);
        assert!(node.buffer.is_empty());
        assert_eq!(node.completed.len(), 1);
        assert_eq!(node.completed[0].attempts, 1);
        assert!(node.awaiting_ack.is_none());
    }

    #[test]
    fn timeout_backs_off_then_retransmits() {
        let mut node = planned_node();
        node.on_data(7, 0.0);
        node.on_beacon(150.0, 400.0);
        node.on_transmit(151.0, 0.5);
        let deadline = 151.0 + 0.5 + calib::ACK_TIMEOUT_S;
        node.on_ack_timeout(7, deadline);
        assert!(node.awaiting_ack.is_none());
        // The engagement winds down to `t + 1`; past that, the node is in
        // backoff and not listening even inside the plan window.
        assert!(!node.is_listening(deadline + 2.0));
        assert!(node
            .is_listening(deadline + calib::RETRY_BACKOFF_S + 1.0)
            .eq(&node.in_plan(deadline + calib::RETRY_BACKOFF_S + 1.0)));
        // A beacon after backoff triggers attempt 2.
        let t2 = deadline + calib::RETRY_BACKOFF_S + 5.0;
        assert_eq!(
            node.on_beacon(t2, t2 + 100.0),
            BeaconReaction::Transmit { seq: 7, attempt: 2 }
        );
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut node = NodeMachine::with_limits(0, 8, 3);
        node.listen_plan = vec![(0.0, 1e9)];
        node.on_data(9, 0.0);
        let mut t = 10.0;
        for _ in 0..3 {
            assert!(matches!(
                node.on_beacon(t, 1e6),
                BeaconReaction::Transmit { seq: 9, .. }
            ));
            node.on_transmit(t + 0.1, 0.5);
            t += calib::ACK_TIMEOUT_S + 1.0;
            node.on_ack_timeout(9, t);
            t += calib::RETRY_BACKOFF_S + 1.0;
        }
        assert!(node.buffer.is_empty());
        assert_eq!(node.gave_up.len(), 1);
        assert_eq!(node.gave_up[0].attempts, 3);
        assert_eq!(node.on_beacon(t + 1.0, 1e6), BeaconReaction::Idle);
    }

    #[test]
    fn stale_acks_are_ignored() {
        let mut node = planned_node();
        node.on_data(1, 0.0);
        node.on_data(2, 1.0);
        node.on_beacon(110.0, 400.0);
        node.on_transmit(110.5, 0.5);
        node.on_ack(999, 112.0);
        assert!(node.awaiting_ack.is_some());
        assert_eq!(node.buffer.len(), 2);
    }

    #[test]
    fn residency_integrals_accumulate() {
        let mut node = planned_node();
        node.on_data(1, 0.0);
        // Pending 0→150 (plan overlap: 100→150 = 50 s), engaged at 150.
        node.on_beacon(150.0, 400.0);
        node.on_transmit(151.0, 0.5);
        node.on_ack(1, 153.0);
        node.on_pass_end(400.0);
        node.finalize(2_000.0);
        // Engagement wound down to linger after the ACK drained the buffer.
        let expected_engaged = 153.0 + calib::ENGAGED_LINGER_S - 150.0;
        assert!(
            (node.engaged_s - expected_engaged).abs() < 1e-9,
            "engaged {}",
            node.engaged_s
        );
        assert!((node.pending_wait_s() - 150.0).abs() < 1e-9);
        assert!(
            (node.plan_rx_s() - 50.0).abs() < 1e-9,
            "plan rx {}",
            node.plan_rx_s()
        );
        assert!((node.tx_airtime_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn plan_rx_spans_multiple_windows() {
        let mut node = planned_node();
        node.on_data(1, 0.0);
        // Never engaged; campaign ends at 2 000 s.
        node.finalize(2_000.0);
        // Pending 0→2 000 overlaps both plan windows: 300 + 300 s.
        assert!(
            (node.plan_rx_s() - 600.0).abs() < 1e-9,
            "{}",
            node.plan_rx_s()
        );
        assert!((node.pending_wait_s() - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn attempt_counter_tracks_first_tx_time() {
        let mut node = planned_node();
        node.on_data(5, 0.0);
        node.on_beacon(130.0, 400.0);
        node.on_transmit(131.0, 0.4);
        node.on_ack_timeout(5, 131.0 + 0.4 + calib::ACK_TIMEOUT_S);
        let t2 = 131.0 + calib::RETRY_BACKOFF_S + 10.0;
        node.on_beacon(t2, t2 + 200.0);
        node.on_transmit(t2 + 1.0, 0.4);
        node.on_ack(5, t2 + 3.0);
        let done = &node.completed[0];
        assert_eq!(done.attempts, 2);
        assert_eq!(done.first_tx_s, Some(131.0));
    }
}
