//! Ground-station availability.
//!
//! TinyGS-class stations are $30 hobbyist boards on domestic power and
//! Wi-Fi: they reboot, lose MQTT connectivity, take OTA updates, and get
//! retuned by their owners. The paper's trace volumes imply each station
//! captures well under one contact per day end to end. Rather than a
//! flat per-pass coin toss, availability is modelled as a two-state
//! Markov process (up/down with exponential dwell times), which produces
//! the *temporally correlated* outages real crowd-sourced hardware shows:
//! a station that is down tends to stay down through several passes.

use satiot_sim::{Rng, SimTime};

/// Parameters of the up/down availability chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityParams {
    /// Mean up spell, hours.
    pub mean_up_h: f64,
    /// Mean down spell, hours.
    pub mean_down_h: f64,
}

impl AvailabilityParams {
    /// Long-run fraction of time the station is up.
    pub fn uptime_fraction(&self) -> f64 {
        self.mean_up_h / (self.mean_up_h + self.mean_down_h)
    }

    /// Parameters with the given long-run uptime, keeping the
    /// characteristic outage length at `mean_down_h`.
    pub fn with_uptime(uptime: f64, mean_down_h: f64) -> AvailabilityParams {
        let uptime = uptime.clamp(1e-3, 1.0 - 1e-3);
        AvailabilityParams {
            mean_up_h: mean_down_h * uptime / (1.0 - uptime),
            mean_down_h,
        }
    }
}

impl Default for AvailabilityParams {
    /// Calibrated against Table 1's trace volumes (see
    /// [`crate::calib::SCHEDULER_COVERAGE`]): stations are up ~45 % of
    /// the time with multi-hour outages.
    fn default() -> Self {
        AvailabilityParams::with_uptime(crate::calib::SCHEDULER_COVERAGE, 8.0)
    }
}

/// One station's precomputed availability timeline.
#[derive(Debug, Clone)]
pub struct StationAvailability {
    /// Sorted spell boundaries: `(start_s, up)`.
    spells: Vec<(f64, bool)>,
}

impl StationAvailability {
    /// Generate a timeline covering `[0, horizon]`.
    pub fn generate(params: &AvailabilityParams, horizon: SimTime, rng: &mut Rng) -> Self {
        let mut spells = Vec::new();
        let mut t = 0.0;
        let mut up = rng.chance(params.uptime_fraction());
        while t <= horizon.as_secs() {
            spells.push((t, up));
            let mean_h = if up {
                params.mean_up_h
            } else {
                params.mean_down_h
            };
            t += rng.exponential(mean_h * 3_600.0).max(300.0);
            up = !up;
        }
        StationAvailability { spells }
    }

    /// A station that is always up (ideal-hardware baseline).
    pub fn always_up() -> Self {
        StationAvailability {
            spells: vec![(0.0, true)],
        }
    }

    /// Whether the station is up at `t_s` seconds.
    pub fn is_up(&self, t_s: f64) -> bool {
        match self.spells.binary_search_by(|(s, _)| s.total_cmp(&t_s)) {
            Ok(i) => self.spells[i].1,
            Err(0) => self.spells[0].1,
            Err(i) => self.spells[i - 1].1,
        }
    }

    /// Fraction of `[0, horizon_s]` the station is up.
    pub fn uptime_in(&self, horizon_s: f64) -> f64 {
        let mut up_total = 0.0;
        for (i, &(start, up)) in self.spells.iter().enumerate() {
            if start > horizon_s {
                break;
            }
            let end = self
                .spells
                .get(i + 1)
                .map(|&(s, _)| s)
                .unwrap_or(horizon_s)
                .min(horizon_s);
            if up {
                up_total += (end - start).max(0.0);
            }
        }
        up_total / horizon_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uptime_fraction_round_trips() {
        for target in [0.1, 0.45, 0.9] {
            let p = AvailabilityParams::with_uptime(target, 6.0);
            assert!((p.uptime_fraction() - target).abs() < 1e-12);
            assert_eq!(p.mean_down_h, 6.0);
        }
        // Degenerate targets clamp instead of dividing by zero.
        assert!(AvailabilityParams::with_uptime(0.0, 6.0).mean_up_h > 0.0);
        assert!(AvailabilityParams::with_uptime(1.0, 6.0)
            .mean_up_h
            .is_finite());
    }

    #[test]
    fn long_run_uptime_matches_parameters() {
        let params = AvailabilityParams::with_uptime(0.45, 8.0);
        let horizon = SimTime::from_days(365.0);
        let mut rng = Rng::from_seed(5);
        let a = StationAvailability::generate(&params, horizon, &mut rng);
        let measured = a.uptime_in(horizon.as_secs());
        assert!(
            (measured - 0.45).abs() < 0.08,
            "uptime {measured} vs target 0.45"
        );
    }

    #[test]
    fn outages_are_correlated_not_noise() {
        // Consecutive samples 10 minutes apart agree far more often than
        // independent coin flips would (0.45² + 0.55² ≈ 0.5).
        let params = AvailabilityParams::default();
        let mut rng = Rng::from_seed(7);
        let a = StationAvailability::generate(&params, SimTime::from_days(120.0), &mut rng);
        let mut agree = 0;
        let n = 10_000;
        for i in 0..n {
            let t = i as f64 * 600.0;
            if a.is_up(t) == a.is_up(t + 600.0) {
                agree += 1;
            }
        }
        let agreement = agree as f64 / n as f64;
        assert!(agreement > 0.9, "agreement {agreement}");
    }

    #[test]
    fn always_up_is_always_up() {
        let a = StationAvailability::always_up();
        for t in [0.0, 1e3, 1e7] {
            assert!(a.is_up(t));
        }
        assert_eq!(a.uptime_in(1e6), 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let params = AvailabilityParams::default();
        let a = StationAvailability::generate(
            &params,
            SimTime::from_days(30.0),
            &mut Rng::from_seed(9),
        );
        let b = StationAvailability::generate(
            &params,
            SimTime::from_days(30.0),
            &mut Rng::from_seed(9),
        );
        for i in 0..1_000 {
            let t = i as f64 * 2_000.0;
            assert_eq!(a.is_up(t), b.is_up(t));
        }
    }
}
