//! Calibration constants.
//!
//! Every number here is either taken directly from the paper or fitted so
//! that a *simulated* campaign lands in the band the paper *measured*.
//! Keeping them in one annotated module makes the fit auditable: change a
//! constant, re-run `reproduce_all`, and diff EXPERIMENTS.md.

/// Beacon payload length, bytes. TinyGS-class beacons carry telemetry
/// (battery, temperature, IDs) of a few tens of bytes.
pub const BEACON_PAYLOAD_BYTES: usize = 24;

/// Application sensor payload, bytes (paper §3.2: 20-byte data).
pub const SENSOR_PAYLOAD_BYTES: usize = 20;

/// Sensor reporting period, seconds (paper §3.2: every 30 minutes).
pub const SENSOR_PERIOD_S: f64 = 1_800.0;

/// Maximum DtS retransmissions after the first attempt (paper §3.2:
/// "a maximum of five retransmissions").
pub const MAX_RETRANSMISSIONS: u32 = 5;

/// ACK payload length, bytes (sequence echo + status).
pub const ACK_PAYLOAD_BYTES: usize = 8;

/// Delay between a satellite finishing an uplink decode and starting the
/// ACK transmission, seconds (processing turnaround).
pub const ACK_TURNAROUND_S: f64 = 0.4;

/// Node-side ACK wait timeout measured from the end of its uplink,
/// seconds. Must exceed turnaround + ACK airtime.
pub const ACK_TIMEOUT_S: f64 = 3.0;

/// Elevation mask for *theoretical* contact windows, radians (0°: the
/// paper's TLE-based durations count the full above-horizon arc).
pub const THEORETICAL_MASK_RAD: f64 = 0.0;

/// Minimum culmination elevation (degrees) for a predicted pass to enter
/// the node's listen plan: the operator only schedules passes that clear
/// the typical clutter line. Low enough to use most effective contacts,
/// high enough to keep Rx residency — and hence battery drain (Fig 6) —
/// hours per week rather than always-on.
pub const LISTEN_PLAN_MIN_MAX_EL_DEG: f64 = 38.0;

/// Within a scheduled pass, the node opens its receiver only while the
/// satellite is above this elevation (degrees) — the sub-clutter head and
/// tail of a pass cannot carry beacons anyway, so listening there only
/// burns battery.
pub const LISTEN_PLAN_TRIM_EL_DEG: f64 = 24.0;

/// Spread of the per-pass local-horizon severity: each pass sees the
/// clutter profile scaled by a uniform draw from this range (different
/// azimuths have different skylines; some passes rise over a clear
/// horizon, most do not). Preserves the paper's long-distance reception
/// tail (Fig 8) while keeping typical effective windows short (Fig 4a).
pub const CLUTTER_SCALE_RANGE: (f64, f64) = (0.4, 1.6);

/// After its buffer drains (all packets ACKed or abandoned), the node
/// keeps the radio open this long before dropping back to scheduled
/// listening —
/// long enough to catch an ACK straggler, short enough not to burn the
/// battery listening to a satellite it no longer needs.
pub const ENGAGED_LINGER_S: f64 = 15.0;

/// Node store-and-forward buffer capacity, packets. Sized per the
/// paper's §3.1 guidance from contact-interval statistics.
pub const NODE_BUFFER_CAPACITY: usize = 64;

/// Satellite store-and-forward buffer capacity, packets.
pub const SATELLITE_BUFFER_CAPACITY: usize = 4_096;

/// Mean satellite → data-centre processing + batching delay once a
/// ground station is in view, seconds. Fitted against the paper's
/// Figure 5d delivery segment (56.9 min mean, of which GS-pass waiting
/// is the larger part).
pub const DELIVERY_PROCESSING_MEAN_S: f64 = 3_600.0;

/// Terrestrial LoRaWAN end-to-end delay mean, seconds (paper: 0.2 min
/// average, dominated by gateway batching + LTE backhaul).
pub const TERRESTRIAL_E2E_MEAN_S: f64 = 12.0;

/// Rate at which transmissions from the thousands of *other* IoT devices
/// inside the satellite's footprint (3.27×10⁷ km² for Tianqi's high
/// shell — §3.1's congestion argument) overlap an uplink, per second of
/// airtime. Longer packets are exposed longer — the mechanism behind the
/// paper's payload-size reliability ordering (Fig 12a). Fitted against
/// the 91 % no-retransmission reliability.
pub const BACKGROUND_COLLISION_RATE_PER_S: f64 = 0.18;

/// Nodes must start their uplink within this window after a beacon
/// (Tianqi's slotted response period). A short window concentrates the
/// fleet's transmissions — the mechanism behind the concurrency
/// degradation of Fig 12b.
pub const UPLINK_RESPONSE_WINDOW_S: f64 = 10.0;

/// Received-power band of background interferers at the satellite, dBm
/// (devices anywhere in the footprint, so a wide spread).
pub const BACKGROUND_RSSI_DBM: (f64, f64) = (-135.0, -112.0);

/// After an ACK timeout the node closes its receiver for this long
/// (congestion etiquette: do not immediately contend for the same busy
/// satellite). Together with the engagement wind-down this pushes most
/// retries to the *next* contact, which is what makes the paper's DtS
/// latency segment minutes long (Fig 5d).
pub const RETRY_BACKOFF_S: f64 = 61.0;

/// Satellites transmit ACKs at reduced power (shared downlink budget
/// across many served devices). The resulting ACK loss is the paper's
/// explanation for "unnecessary retransmissions": ~half the packets
/// retransmit even though >90 % were already received (§3.2).
pub const ACK_TX_POWER_DELTA_DB: f64 = -7.5;

/// Probability that an accepted packet is lost between the satellite and
/// the subscriber (satellite→GS downlink corruption, on-board expiry) —
/// the residual loss that keeps even 5-retransmission reliability below
/// 100 % in the paper's Figure 5a.
pub const DELIVERY_LOSS_PROB: f64 = 0.02;

/// TinyGS-style ground stations are crowd-sourced single-channel
/// receivers that spend part of their time on housekeeping (MQTT sync,
/// OTA updates, retuning). Fraction of an assigned pass a station is
/// actually listening; fitted against Table 1's trace volumes.
pub const STATION_LISTEN_EFFICIENCY: f64 = 0.75;

/// After a station retunes to a new satellite (frequency + LoRa
/// parameters) it needs this long before it can decode — the first
/// beacons of every covered window are structurally lost, seconds.
pub const STATION_RETUNE_S: f64 = 8.0;

/// Fraction of in-view passes a station actually captures end to end:
/// station availability (power, connectivity, OTA updates on $30
/// crowd-sourced hardware) × scheduler conflict losses. Calibrated
/// against Table 1's trace volumes, which imply well under one captured
/// contact per station-day. The vanilla TinyGS scheduler is modelled
/// explicitly instead.
pub const SCHEDULER_COVERAGE: f64 = 0.45;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_timeout_exceeds_turnaround_plus_airtime() {
        // ACK at SF10/125 kHz with 8 bytes ≈ 0.29 s on air.
        let cfg = satiot_phy::params::LoRaConfig::dts_beacon();
        let ack_airtime = satiot_phy::airtime::airtime_s(&cfg, ACK_PAYLOAD_BYTES);
        assert!(ACK_TIMEOUT_S > ACK_TURNAROUND_S + ack_airtime + 0.5);
    }

    #[test]
    fn listen_plan_threshold_clears_clutter_line() {
        // `assert!` on consts would fold away; compare through a binding.
        let threshold = LISTEN_PLAN_MIN_MAX_EL_DEG;
        assert!((15.0..=45.0).contains(&threshold), "threshold {threshold}");
    }

    #[test]
    fn sensor_cadence_matches_paper() {
        assert_eq!(SENSOR_PERIOD_S, 1_800.0);
        assert_eq!(SENSOR_PAYLOAD_BYTES, 20);
        assert_eq!(MAX_RETRANSMISSIONS, 5);
    }

    #[test]
    fn efficiencies_are_fractions() {
        for f in [STATION_LISTEN_EFFICIENCY, SCHEDULER_COVERAGE] {
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
