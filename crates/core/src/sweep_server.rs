//! Campaign-as-a-service: the resumable, sharded sweep driver.
//!
//! Every frontier study in the paper — Tables 1–3, the cost crossover
//! surfaces, every `exp_extension_*` — is a *sweep*: many campaign
//! configurations over seeds, schedulers, sites, and constellations.
//! Run as independent batch processes those sweeps are cold-start
//! workloads — each run rebuilds the ephemeris grids and pass lists the
//! previous one just computed. This module turns the toolkit into a
//! long-running sweep service instead:
//!
//! * **Cross-job cache amortisation.** Jobs are executed inside one
//!   process, so the process-wide [`crate::sweep`] pass cache and
//!   ephemeris grid store stay warm across jobs. Jobs sharing a
//!   *(constellation, window, mask)* reuse the first job's pass lists
//!   and grids; only prediction-relevant differences recompute. The
//!   per-job [`CacheAttribution`] deltas prove where the reuse happened
//!   (`BENCH_sweep.json` pins the resulting throughput floor).
//! * **Bounded memory.** Jobs run under the aggregating sink — traces
//!   stream into the PR-6 mergeable sketches ([`TraceAggregate`]'s
//!   exact merge law), so sweep memory is O(jobs' summaries), never
//!   O(traces). Between jobs the server enforces the configured cache
//!   payload budget ([`crate::sweep::enforce_cache_budget`]), so a
//!   sweep over disjoint windows cannot grow without bound.
//! * **Checkpoint/resume.** With a spill directory configured, each
//!   completed job's results — its sketch, per-constellation outcomes,
//!   and root RNG stream position — are written to
//!   `<dir>/<fingerprint>.ckpt` (atomic rename). A killed sweep
//!   resumes by reloading completed jobs and re-running only the rest,
//!   losing at most the in-flight job; because every job's results are
//!   a pure function of its spec, the resumed outcome is bit-identical
//!   to an uninterrupted run (`sweep_smoke` SIGKILLs a live sweep in CI
//!   to prove it). Floats round-trip through their exact bit patterns,
//!   and a FNV-64 content checksum rejects torn or stale files.
//! * **Sharding.** `SATIOT_SWEEP_SHARD=i/n` assigns every `n`-th job
//!   (round-robin by queue position) to this process, so a sweep can
//!   spread across OS processes sharing one spill directory; shard
//!   outcomes merge exactly through the sketch merge law.
//!
//! ```
//! use satiot_core::prelude::*;
//! use satiot_core::sweep_server::{SweepJob, SweepServer};
//!
//! let jobs: Vec<SweepJob> = (0..3)
//!     .map(|i| {
//!         SweepJob::new(format!("seed-{i}"), 7 + i)
//!             .with_max_days(0.3)
//!             .with_sites(["HK"])
//!             .with_constellations(["FOSSA"])
//!     })
//!     .collect();
//! let outcome = SweepServer::new(RunOptions::default())
//!     .run(&jobs)
//!     .unwrap();
//! assert_eq!(outcome.records.len(), 3);
//! // Jobs 1 and 2 reused job 0's pass lists: no new computes.
//! assert!(outcome.records[1].cache.pass_computes == 0);
//! ```

use crate::error::SatIotError;
use crate::options::RunOptions;
use crate::passive::{PassiveCampaign, PassiveConfig, SchedulerKind};
use crate::sink::SinkMode;
use crate::sweep;
use satiot_measure::sketch::{
    ConstellationSketch, MetricSketch, QuantileSketch, StreamSummary, TraceAggregate,
};
use satiot_obs::metrics::Counter;
use satiot_scenarios::constellations::all_constellations;
use satiot_scenarios::sites::measurement_sites;
use satiot_sim::pool;
use satiot_sim::rng::Rng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Jobs executed end-to-end by this process (metrics).
static M_JOBS_RUN: Counter = Counter::new("core.sweep.server.jobs_run");
/// Jobs reloaded from checkpoints instead of re-run (metrics).
static M_JOBS_RESUMED: Counter = Counter::new("core.sweep.server.jobs_resumed");
/// Jobs skipped because they belong to another shard (metrics).
static M_JOBS_SKIPPED: Counter = Counter::new("core.sweep.server.jobs_skipped");
/// Checkpoints written (metrics).
static M_CHECKPOINTS_WRITTEN: Counter = Counter::new("core.sweep.server.checkpoints_written");
/// Checkpoints rejected as corrupt/stale/mismatched (metrics).
static M_CHECKPOINTS_REJECTED: Counter = Counter::new("core.sweep.server.checkpoints_rejected");

// Always-on proof counters (plain atomics, like `sweep::stats`): the
// kill/resume smoke asserts on them with `SATIOT_METRICS` off.
static JOBS_RUN: AtomicU64 = AtomicU64::new(0);
static JOBS_RESUMED: AtomicU64 = AtomicU64::new(0);
static JOBS_SKIPPED: AtomicU64 = AtomicU64::new(0);
static CHECKPOINTS_WRITTEN: AtomicU64 = AtomicU64::new(0);
static CHECKPOINTS_REJECTED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the server's always-on proof counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Jobs executed end-to-end by this process.
    pub jobs_run: u64,
    /// Jobs reloaded from checkpoints instead of re-run.
    pub jobs_resumed: u64,
    /// Jobs skipped because they belong to another shard.
    pub jobs_skipped: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
    /// Checkpoints rejected (corrupt, torn, or for a different spec).
    pub checkpoints_rejected: u64,
}

/// Read the server's proof counters.
pub fn server_stats() -> ServerStats {
    ServerStats {
        jobs_run: JOBS_RUN.load(Relaxed),
        jobs_resumed: JOBS_RESUMED.load(Relaxed),
        jobs_skipped: JOBS_SKIPPED.load(Relaxed),
        checkpoints_written: CHECKPOINTS_WRITTEN.load(Relaxed),
        checkpoints_rejected: CHECKPOINTS_REJECTED.load(Relaxed),
    }
}

/// Zero the server's proof counters (bench legs isolating one sweep).
pub fn reset_server_stats() {
    JOBS_RUN.store(0, Relaxed);
    JOBS_RESUMED.store(0, Relaxed);
    JOBS_SKIPPED.store(0, Relaxed);
    CHECKPOINTS_WRITTEN.store(0, Relaxed);
    CHECKPOINTS_REJECTED.store(0, Relaxed);
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// One campaign job in a sweep queue: a passive-campaign scenario plus
/// the seed and tag that identify it.
///
/// Empty `sites`/`constellations` lists mean "all of the paper's
/// catalog"; non-empty lists select by site code / constellation label
/// (resolved in *catalog* order, so job results are independent of the
/// order codes are listed in).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// Human-readable label, carried through records and checkpoints.
    /// Must be printable ASCII without `"` or `\` (the checkpoint codec
    /// stores it quoted).
    pub tag: String,
    /// Root campaign seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Per-site simulated-day cap.
    pub max_days: f64,
    /// Station-assignment policy.
    pub scheduler: SchedulerKind,
    /// Site codes to simulate (empty = all measurement sites).
    pub sites: Vec<String>,
    /// Constellation labels to observe (empty = all).
    pub constellations: Vec<String>,
}

impl SweepJob {
    /// A job over the full catalog with the default scheduler and a
    /// one-day cap (builders refine from there).
    pub fn new(tag: impl Into<String>, seed: u64) -> SweepJob {
        SweepJob {
            tag: tag.into(),
            seed,
            max_days: 1.0,
            scheduler: SchedulerKind::Predictive,
            sites: Vec::new(),
            constellations: Vec::new(),
        }
    }

    /// Override the per-site day cap.
    pub fn with_max_days(mut self, days: f64) -> SweepJob {
        self.max_days = days;
        self
    }

    /// Override the scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> SweepJob {
        self.scheduler = scheduler;
        self
    }

    /// Select sites by code (empty = all).
    pub fn with_sites<S: Into<String>>(mut self, codes: impl IntoIterator<Item = S>) -> SweepJob {
        self.sites = codes.into_iter().map(Into::into).collect();
        self
    }

    /// Select constellations by label (empty = all).
    pub fn with_constellations<S: Into<String>>(
        mut self,
        labels: impl IntoIterator<Item = S>,
    ) -> SweepJob {
        self.constellations = labels.into_iter().map(Into::into).collect();
        self
    }

    /// The job's identity fingerprint: FNV-64 over the canonical spec.
    /// Checkpoint files are named by it, and resume only accepts a file
    /// whose embedded spec *and* fingerprint both match.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.text(&self.tag);
        h.u64(self.seed);
        h.u64(self.max_days.to_bits());
        match self.scheduler {
            SchedulerKind::Predictive => h.text("P"),
            SchedulerKind::Vanilla { dwell_s } => {
                h.text("V");
                h.u64(dwell_s.to_bits());
            }
        }
        for s in &self.sites {
            h.text(s);
        }
        h.text("|");
        for c in &self.constellations {
            h.text(c);
        }
        h.finish()
    }

    /// Spec equality with exact float semantics (`max_days` and any
    /// vanilla dwell compare by bit pattern, so NaN-poisoned or sub-ulp
    /// differences never alias).
    pub fn same_spec(&self, other: &SweepJob) -> bool {
        let scheduler_eq = match (self.scheduler, other.scheduler) {
            (SchedulerKind::Predictive, SchedulerKind::Predictive) => true,
            (SchedulerKind::Vanilla { dwell_s: a }, SchedulerKind::Vanilla { dwell_s: b }) => {
                a.to_bits() == b.to_bits()
            }
            _ => false,
        };
        self.tag == other.tag
            && self.seed == other.seed
            && self.max_days.to_bits() == other.max_days.to_bits()
            && scheduler_eq
            && self.sites == other.sites
            && self.constellations == other.constellations
    }

    /// Validate the job and resolve it into a campaign configuration.
    ///
    /// # Errors
    ///
    /// [`SatIotError::InvalidName`] for a tag the checkpoint codec
    /// cannot store, an unknown site code or constellation label, or a
    /// duplicated selection; [`SatIotError::NonFiniteTime`] /
    /// [`SatIotError::InvalidConfig`] for an unusable day cap. (An
    /// invalid vanilla dwell is rejected by the campaign itself.)
    pub fn to_config(&self) -> Result<PassiveConfig, SatIotError> {
        if self.tag.is_empty()
            || !self
                .tag
                .chars()
                .all(|c| (c.is_ascii_graphic() || c == ' ') && c != '"' && c != '\\')
        {
            return Err(SatIotError::InvalidName {
                field: "SweepJob.tag",
                name: self.tag.clone(),
                suggestion: None,
            });
        }
        if !self.max_days.is_finite() {
            return Err(SatIotError::NonFiniteTime {
                context: "SweepJob.max_days",
                value: self.max_days,
            });
        }
        if self.max_days <= 0.0 {
            return Err(SatIotError::InvalidConfig {
                field: "SweepJob.max_days",
                value: self.max_days,
                requirement: "must be > 0 simulated days",
            });
        }
        let catalog_sites = measurement_sites();
        let sites = if self.sites.is_empty() {
            catalog_sites
        } else {
            for code in &self.sites {
                if !catalog_sites
                    .iter()
                    .any(|s| s.code.eq_ignore_ascii_case(code))
                {
                    return Err(SatIotError::InvalidName {
                        field: "SweepJob.sites",
                        name: code.clone(),
                        suggestion: satiot_scenarios::site_code_suggestion(code),
                    });
                }
                if self
                    .sites
                    .iter()
                    .filter(|c| c.eq_ignore_ascii_case(code))
                    .count()
                    > 1
                {
                    return Err(SatIotError::InvalidName {
                        field: "SweepJob.sites (duplicated)",
                        name: code.clone(),
                        suggestion: None,
                    });
                }
            }
            catalog_sites
                .into_iter()
                .filter(|s| self.sites.iter().any(|c| c.eq_ignore_ascii_case(s.code)))
                .collect()
        };
        let catalog_consts = all_constellations();
        let constellations = if self.constellations.is_empty() {
            catalog_consts
        } else {
            for label in &self.constellations {
                if !catalog_consts
                    .iter()
                    .any(|c| c.name.eq_ignore_ascii_case(label))
                {
                    return Err(SatIotError::InvalidName {
                        field: "SweepJob.constellations",
                        name: label.clone(),
                        suggestion: satiot_scenarios::constellation_suggestion(label),
                    });
                }
                if self
                    .constellations
                    .iter()
                    .filter(|l| l.eq_ignore_ascii_case(label))
                    .count()
                    > 1
                {
                    return Err(SatIotError::InvalidName {
                        field: "SweepJob.constellations (duplicated)",
                        name: label.clone(),
                        suggestion: None,
                    });
                }
            }
            catalog_consts
                .into_iter()
                .filter(|c| {
                    self.constellations
                        .iter()
                        .any(|l| l.eq_ignore_ascii_case(c.name))
                })
                .collect()
        };
        Ok(PassiveConfig {
            seed: self.seed,
            max_days: self.max_days,
            scheduler: self.scheduler,
            sites,
            constellations,
            ..PassiveConfig::default()
        })
    }
}

// ---------------------------------------------------------------------------
// Records and outcomes
// ---------------------------------------------------------------------------

/// Cache work attributed to one job: the [`crate::sweep`] counter
/// deltas across its execution. Exact when jobs run sequentially (the
/// default); zeroed under job-level parallelism, where concurrent jobs
/// share the counters and a per-job delta would lie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheAttribution {
    /// Pass-cache lookups issued by this job.
    pub pass_lookups: u64,
    /// Pass lists this job had to predict (the rest were warm).
    pub pass_computes: u64,
    /// Grid-store lookups issued by this job.
    pub grid_lookups: u64,
    /// Ephemeris grids this job had to build.
    pub grid_computes: u64,
}

impl CacheAttribution {
    /// Pass-cache lookups served warm.
    pub fn pass_hits(&self) -> u64 {
        self.pass_lookups - self.pass_computes
    }

    /// Grid-store lookups served warm.
    pub fn grid_hits(&self) -> u64 {
        self.grid_lookups - self.grid_computes
    }
}

/// Per-constellation outcome of one job (the quantities the frontier
/// studies consume).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstellationOutcome {
    /// Constellation label.
    pub constellation: String,
    /// Beacons received across all covered passes.
    pub received: u64,
    /// Beacons transmitted inside those passes.
    pub transmitted: u64,
    /// Covered passes observed.
    pub covered_passes: u64,
    /// Mean effective contact duration over covered windows, minutes.
    pub effective_min_mean: f64,
}

/// One job's results: everything a checkpoint stores and a resumed
/// sweep reloads.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job spec this record answers for.
    pub job: SweepJob,
    /// [`SweepJob::fingerprint`] of that spec.
    pub fingerprint: u64,
    /// xoshiro256** state of the campaign's root stream at job start —
    /// a pure function of the seed. A resumed sweep recomputes it and
    /// rejects the checkpoint on mismatch (e.g. a stale file from an
    /// incompatible build), so "resumed" can never silently mean
    /// "different stream".
    pub rng_state: [u64; 4],
    /// Whether this record was reloaded from a checkpoint.
    pub resumed: bool,
    /// Total decoded beacon traces.
    pub traces_total: u64,
    /// Traces emitted through the sink (equals `traces_total` under the
    /// aggregating sink).
    pub emitted: u64,
    /// Recoverable faults survived during the run.
    pub faults: u64,
    /// Per-constellation outcomes, in catalog order.
    pub constellations: Vec<ConstellationOutcome>,
    /// Cache work attributed to this job (not part of the result
    /// identity: it depends on queue position and cache warmth).
    pub cache: CacheAttribution,
    /// The job's mergeable trace sketch.
    pub sketch: Option<TraceAggregate>,
}

impl JobRecord {
    /// Result identity: every deterministic field — spec, RNG position,
    /// trace counts, outcomes, sketch — ignoring provenance (`resumed`)
    /// and cache warmth (`cache`). This is the "bit-identical to an
    /// uninterrupted run" relation the kill/resume smoke asserts.
    pub fn same_results(&self, other: &JobRecord) -> bool {
        self.job.same_spec(&other.job)
            && self.fingerprint == other.fingerprint
            && self.rng_state == other.rng_state
            && self.traces_total == other.traces_total
            && self.emitted == other.emitted
            && self.faults == other.faults
            && self.constellations == other.constellations
            && self.sketch == other.sketch
    }
}

/// The merged outcome of one sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepOutcome {
    /// Per-job records, in queue order (shard-skipped jobs omitted).
    pub records: Vec<JobRecord>,
    /// All job sketches merged through the exact sketch merge law.
    pub merged: TraceAggregate,
    /// Jobs executed end-to-end.
    pub jobs_run: usize,
    /// Jobs reloaded from checkpoints.
    pub jobs_resumed: usize,
    /// Jobs left to other shards.
    pub jobs_skipped: usize,
}

impl SweepOutcome {
    /// Whether two outcomes carry bit-identical results (see
    /// [`JobRecord::same_results`]; `merged` is covered by exact
    /// equality, run/resume tallies are provenance and ignored).
    pub fn same_results(&self, other: &SweepOutcome) -> bool {
        self.records.len() == other.records.len()
            && self
                .records
                .iter()
                .zip(&other.records)
                .all(|(a, b)| a.same_results(b))
            && self.merged == other.merged
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// Sweep-server configuration, resolved from [`RunOptions`] (the
/// `SATIOT_SWEEP_*` knobs) or set programmatically.
#[derive(Debug, Clone, Default)]
pub struct SweepConfig {
    /// Checkpoint directory; `None` disables checkpoint/resume.
    pub spill_dir: Option<PathBuf>,
    /// `(index, count)` shard assignment; `None` runs every job.
    pub shard: Option<(usize, usize)>,
    /// Jobs to execute concurrently on the sweep pool. The default `1`
    /// runs jobs sequentially (each campaign still parallelises
    /// internally) and is what makes [`CacheAttribution`] exact.
    pub job_parallelism: usize,
}

/// The long-running sweep driver. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct SweepServer {
    opts: RunOptions,
    config: SweepConfig,
}

impl SweepServer {
    /// A server honouring `opts` — including its `SATIOT_SWEEP_DIR`,
    /// `SATIOT_SWEEP_SHARD`, and `SATIOT_SWEEP_CACHE_MB` knobs. A
    /// configured cache budget is installed process-wide here
    /// (mirroring [`RunOptions::apply`]) and enforced between jobs; an
    /// unconfigured one leaves the process latch alone.
    pub fn new(opts: RunOptions) -> SweepServer {
        if let Some(mb) = opts.sweep_cache_mb {
            sweep::set_cache_budget_bytes(Some(mb << 20));
        }
        SweepServer {
            opts,
            config: SweepConfig {
                spill_dir: opts.sweep_dir.map(PathBuf::from),
                shard: opts.sweep_shard,
                job_parallelism: 1,
            },
        }
    }

    /// Override the checkpoint directory.
    pub fn with_spill_dir(mut self, dir: Option<&Path>) -> SweepServer {
        self.config.spill_dir = dir.map(Path::to_path_buf);
        self
    }

    /// Override the shard assignment (`(index, count)`, `index <
    /// count`).
    pub fn with_shard(mut self, shard: Option<(usize, usize)>) -> SweepServer {
        self.config.shard = shard;
        self
    }

    /// Override job-level parallelism. Anything above `1` trades exact
    /// per-job [`CacheAttribution`] (zeroed, since concurrent jobs
    /// share the counters) for concurrency; results stay bit-identical
    /// because each job's streams derive from its own seed.
    pub fn with_job_parallelism(mut self, jobs: usize) -> SweepServer {
        self.config.job_parallelism = jobs.max(1);
        self
    }

    /// Run (or resume) a sweep over `jobs`.
    ///
    /// Jobs are validated up front — an invalid job fails the whole
    /// sweep *before* any work, so a long queue cannot die at hour ten
    /// on a typo. Fingerprints must be unique (duplicate submissions
    /// would alias one checkpoint file).
    ///
    /// # Errors
    ///
    /// Any job validation error (see [`SweepJob::to_config`]), a
    /// duplicate fingerprint ([`SatIotError::InvalidName`]), a shard
    /// index out of range ([`SatIotError::InvalidConfig`]), or a
    /// campaign failure from an executed job.
    pub fn run(&self, jobs: &[SweepJob]) -> Result<SweepOutcome, SatIotError> {
        for job in jobs {
            job.to_config()?;
        }
        for (i, job) in jobs.iter().enumerate() {
            let fp = job.fingerprint();
            if jobs[..i].iter().any(|other| other.fingerprint() == fp) {
                return Err(SatIotError::InvalidName {
                    field: "SweepJob (duplicate fingerprint)",
                    name: job.tag.clone(),
                    suggestion: None,
                });
            }
        }
        if let Some((index, count)) = self.config.shard {
            if index >= count || count == 0 {
                return Err(SatIotError::InvalidConfig {
                    field: "SweepConfig.shard",
                    value: index as f64,
                    requirement: "index < count and count >= 1",
                });
            }
        }
        if let Some(dir) = &self.config.spill_dir {
            std::fs::create_dir_all(dir).map_err(|_| SatIotError::InvalidName {
                field: "SweepConfig.spill_dir",
                name: dir.display().to_string(),
                suggestion: None,
            })?;
        }

        // Partition the queue: other shards' jobs, resumable jobs,
        // pending jobs.
        let mut slots: Vec<Option<JobRecord>> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<(usize, &SweepJob)> = Vec::new();
        let mut jobs_skipped = 0usize;
        let mut jobs_resumed = 0usize;
        let mut kept = 0usize;
        for (i, job) in jobs.iter().enumerate() {
            if let Some((index, count)) = self.config.shard {
                if i % count != index {
                    jobs_skipped += 1;
                    JOBS_SKIPPED.fetch_add(1, Relaxed);
                    M_JOBS_SKIPPED.inc();
                    continue;
                }
            }
            kept += 1;
            if let Some(record) = self.try_resume(job) {
                jobs_resumed += 1;
                JOBS_RESUMED.fetch_add(1, Relaxed);
                M_JOBS_RESUMED.inc();
                slots.push(Some(record));
            } else {
                pending.push((slots.len(), job));
                slots.push(None);
            }
        }

        // Execute the pending jobs.
        if self.config.job_parallelism <= 1 {
            for (slot, job) in &pending {
                let record = self.execute(job, true)?;
                sweep::enforce_cache_budget();
                slots[*slot] = Some(record);
            }
        } else {
            let results: Vec<Result<JobRecord, SatIotError>> =
                pool::parallel_map_with(&pending, self.config.job_parallelism, |_, (_, job)| {
                    self.execute(job, false)
                });
            sweep::enforce_cache_budget();
            for ((slot, _), result) in pending.iter().zip(results) {
                slots[*slot] = Some(result?);
            }
        }

        let records: Vec<JobRecord> = slots.into_iter().flatten().collect();
        debug_assert_eq!(records.len(), kept);
        let mut merged = TraceAggregate::new();
        for record in &records {
            if let Some(sketch) = &record.sketch {
                merged.merge(sketch);
            }
        }
        Ok(SweepOutcome {
            jobs_run: records.iter().filter(|r| !r.resumed).count(),
            jobs_resumed,
            jobs_skipped,
            records,
            merged,
        })
    }

    /// Execute one job end-to-end and checkpoint the result.
    fn execute(&self, job: &SweepJob, attribute: bool) -> Result<JobRecord, SatIotError> {
        let (pass_before, grid_before) = (sweep::stats(), sweep::grid_stats());
        let config = job.to_config()?;
        let resolved: Vec<String> = config
            .constellations
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        // Aggregate sink always: sweep memory must stay O(summaries)
        // no matter what the caller's options say about single runs.
        let opts = self.opts.with_sink(SinkMode::Aggregate);
        let results = PassiveCampaign::new(config).run(&opts)?;
        let cache = if attribute {
            let (pass_after, grid_after) = (sweep::stats(), sweep::grid_stats());
            CacheAttribution {
                pass_lookups: pass_after.lookups - pass_before.lookups,
                pass_computes: pass_after.computes - pass_before.computes,
                grid_lookups: grid_after.lookups - grid_before.lookups,
                grid_computes: grid_after.computes - grid_before.computes,
            }
        } else {
            CacheAttribution::default()
        };
        let constellations = resolved
            .iter()
            .map(|name| {
                let mut received = 0u64;
                let mut transmitted = 0u64;
                let mut covered = 0u64;
                for p in results.covered_passes().filter(|p| p.constellation == name) {
                    received += p.window.received as u64;
                    transmitted += p.window.transmitted as u64;
                    covered += 1;
                }
                ConstellationOutcome {
                    constellation: name.clone(),
                    received,
                    transmitted,
                    covered_passes: covered,
                    effective_min_mean: results.contact_stats_covered(name, &[]).effective_min.mean,
                }
            })
            .collect();
        let record = JobRecord {
            job: job.clone(),
            fingerprint: job.fingerprint(),
            rng_state: Rng::from_seed(job.seed).state(),
            resumed: false,
            traces_total: results.sink.emitted,
            emitted: results.sink.emitted,
            faults: results.faults.total(),
            constellations,
            cache,
            sketch: results.sketch.clone(),
        };
        JOBS_RUN.fetch_add(1, Relaxed);
        M_JOBS_RUN.inc();
        self.write_checkpoint(&record);
        Ok(record)
    }

    /// Load `job`'s checkpoint, if a valid one exists for exactly this
    /// spec. Any mismatch — checksum, fingerprint, spec, or RNG stream
    /// position — rejects the file (counted) and the job re-runs.
    fn try_resume(&self, job: &SweepJob) -> Option<JobRecord> {
        let dir = self.config.spill_dir.as_ref()?;
        let path = checkpoint_path(dir, job);
        let text = std::fs::read_to_string(&path).ok()?;
        match codec::decode(&text, job) {
            Ok(record) => Some(record),
            Err(_) => {
                CHECKPOINTS_REJECTED.fetch_add(1, Relaxed);
                M_CHECKPOINTS_REJECTED.inc();
                None
            }
        }
    }

    /// Write `record`'s checkpoint atomically (tmp + rename), so a kill
    /// mid-write leaves either the old file or none — never a torn one.
    /// IO failure degrades to "no checkpoint" (the job simply re-runs
    /// on resume) rather than failing the sweep.
    fn write_checkpoint(&self, record: &JobRecord) {
        let Some(dir) = &self.config.spill_dir else {
            return;
        };
        let path = checkpoint_path(dir, &record.job);
        let tmp = path.with_extension("tmp");
        let text = codec::encode(record);
        let written = std::fs::write(&tmp, text.as_bytes())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_ok();
        if written {
            CHECKPOINTS_WRITTEN.fetch_add(1, Relaxed);
            M_CHECKPOINTS_WRITTEN.inc();
        }
    }
}

/// The checkpoint path for one job.
fn checkpoint_path(dir: &Path, job: &SweepJob) -> PathBuf {
    dir.join(format!("{:016x}.ckpt", job.fingerprint()))
}

// ---------------------------------------------------------------------------
// FNV-64 (checksums and fingerprints)
// ---------------------------------------------------------------------------

/// Incremental FNV-1a 64 over length-prefixed fields (length prefixes
/// keep `["ab","c"]` and `["a","bc"]` from colliding).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn text(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64 over raw bytes (the checkpoint content checksum).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.bytes(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Checkpoint codec
// ---------------------------------------------------------------------------

/// The std-only line-oriented checkpoint codec.
///
/// Every float is stored as its exact `f64::to_bits` pattern, so a
/// decoded record is *bit-identical* to the encoded one — the property
/// the whole resume contract stands on. The final line is an FNV-64
/// checksum of everything above it; torn or hand-edited files fail to
/// load and the job re-runs.
mod codec {
    use super::*;

    pub(super) fn encode(record: &JobRecord) -> String {
        let mut out = String::with_capacity(4096);
        let push = |out: &mut String, line: &str| {
            out.push_str(line);
            out.push('\n');
        };
        push(&mut out, "satiot-sweep-checkpoint v1");
        push(
            &mut out,
            &format!("fingerprint {:016x}", record.fingerprint),
        );
        push(&mut out, &format!("tag \"{}\"", record.job.tag));
        push(&mut out, &format!("seed {}", record.job.seed));
        push(
            &mut out,
            &format!("max_days {}", record.job.max_days.to_bits()),
        );
        match record.job.scheduler {
            SchedulerKind::Predictive => push(&mut out, "scheduler P"),
            SchedulerKind::Vanilla { dwell_s } => {
                push(&mut out, &format!("scheduler V {}", dwell_s.to_bits()));
            }
        }
        push(&mut out, &format!("sites {}", record.job.sites.len()));
        for s in &record.job.sites {
            push(&mut out, &format!("s \"{s}\""));
        }
        push(
            &mut out,
            &format!("constellations {}", record.job.constellations.len()),
        );
        for c in &record.job.constellations {
            push(&mut out, &format!("c \"{c}\""));
        }
        let [a, b, c, d] = record.rng_state;
        push(&mut out, &format!("rng {a} {b} {c} {d}"));
        push(&mut out, &format!("traces {}", record.traces_total));
        push(&mut out, &format!("emitted {}", record.emitted));
        push(&mut out, &format!("faults {}", record.faults));
        push(
            &mut out,
            &format!(
                "cache {} {} {} {}",
                record.cache.pass_lookups,
                record.cache.pass_computes,
                record.cache.grid_lookups,
                record.cache.grid_computes
            ),
        );
        push(
            &mut out,
            &format!("outcomes {}", record.constellations.len()),
        );
        for o in &record.constellations {
            push(
                &mut out,
                &format!(
                    "o \"{}\" {} {} {} {}",
                    o.constellation,
                    o.received,
                    o.transmitted,
                    o.covered_passes,
                    o.effective_min_mean.to_bits()
                ),
            );
        }
        match &record.sketch {
            None => push(&mut out, "sketch 0"),
            Some(aggregate) => {
                push(&mut out, "sketch 1");
                push(&mut out, &format!("total {}", aggregate.total));
                push(&mut out, &format!("groups {}", aggregate.groups.len()));
                for g in &aggregate.groups {
                    push(&mut out, &format!("g \"{}\" {}", g.constellation, g.count));
                    push(&mut out, &format!("gsites {}", g.sites.len()));
                    for (site, n) in &g.sites {
                        push(&mut out, &format!("gs \"{site}\" {n}"));
                    }
                    for (label, m) in [
                        ("rssi", &g.rssi_dbm),
                        ("snr", &g.snr_db),
                        ("dist", &g.distance_km),
                        ("elev", &g.elevation_deg),
                    ] {
                        encode_metric(&mut out, label, m);
                    }
                }
            }
        }
        let checksum = fnv64(out.as_bytes());
        out.push_str(&format!("checksum {checksum:016x}\n"));
        out
    }

    fn encode_metric(out: &mut String, label: &str, m: &MetricSketch) {
        let s = &m.summary;
        out.push_str(&format!(
            "m {label} {} {} {} {} {} {}\n",
            s.count,
            s.mean.to_bits(),
            s.m2.to_bits(),
            s.min.to_bits(),
            s.max.to_bits(),
            s.non_finite_dropped
        ));
        let q = &m.quantiles;
        out.push_str(&format!(
            "q {} {} {} {} {} {}\n",
            q.width().to_bits(),
            q.min().to_bits(),
            q.max().to_bits(),
            q.count(),
            q.non_finite_dropped,
            q.buckets()
        ));
        for (k, n) in q.bucket_iter() {
            out.push_str(&format!("b {k} {n}\n"));
        }
    }

    /// Decode a checkpoint for `job`, validating the checksum, the
    /// fingerprint, the embedded spec, and the RNG stream position.
    pub(super) fn decode(text: &str, job: &SweepJob) -> Result<JobRecord, String> {
        // Checksum first: everything up to the final line must hash to
        // the value that line carries.
        let body_end = text
            .trim_end_matches('\n')
            .rfind('\n')
            .ok_or("truncated checkpoint")?
            + 1;
        let (body, tail) = text.split_at(body_end);
        let claimed = tail
            .trim_end()
            .strip_prefix("checksum ")
            .ok_or("missing checksum line")?;
        let claimed = u64::from_str_radix(claimed, 16).map_err(|_| "bad checksum encoding")?;
        if fnv64(body.as_bytes()) != claimed {
            return Err("checksum mismatch".to_string());
        }

        let mut lines = body.lines();
        let mut next = || lines.next().ok_or("truncated checkpoint".to_string());
        expect(next()?, "satiot-sweep-checkpoint v1")?;
        let fingerprint = u64::from_str_radix(field(next()?, "fingerprint")?, 16)
            .map_err(|_| "bad fingerprint")?;
        let (tag, _) = take_quoted(field(next()?, "tag")?)?;
        let seed: u64 = parse(field(next()?, "seed")?)?;
        let max_days = f64::from_bits(parse(field(next()?, "max_days")?)?);
        let scheduler = match field(next()?, "scheduler")? {
            "P" => SchedulerKind::Predictive,
            v => match v.strip_prefix("V ") {
                Some(bits) => SchedulerKind::Vanilla {
                    dwell_s: f64::from_bits(parse(bits)?),
                },
                None => return Err(format!("unknown scheduler {v:?}")),
            },
        };
        let n_sites: usize = parse(field(next()?, "sites")?)?;
        let mut sites = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            sites.push(take_quoted(field(next()?, "s")?)?.0);
        }
        let n_consts: usize = parse(field(next()?, "constellations")?)?;
        let mut constellations = Vec::with_capacity(n_consts);
        for _ in 0..n_consts {
            constellations.push(take_quoted(field(next()?, "c")?)?.0);
        }
        let decoded_job = SweepJob {
            tag,
            seed,
            max_days,
            scheduler,
            sites,
            constellations,
        };
        if fingerprint != job.fingerprint() || !decoded_job.same_spec(job) {
            return Err("checkpoint is for a different job spec".to_string());
        }

        let rng_words: Vec<u64> = field(next()?, "rng")?
            .split_whitespace()
            .map(parse)
            .collect::<Result<_, _>>()?;
        let rng_state: [u64; 4] = rng_words
            .try_into()
            .map_err(|_| "bad rng state arity".to_string())?;
        if rng_state != Rng::from_seed(job.seed).state() {
            return Err("rng stream position mismatch (stale build?)".to_string());
        }
        let traces_total: u64 = parse(field(next()?, "traces")?)?;
        let emitted: u64 = parse(field(next()?, "emitted")?)?;
        let faults: u64 = parse(field(next()?, "faults")?)?;
        let cache_words: Vec<u64> = field(next()?, "cache")?
            .split_whitespace()
            .map(parse)
            .collect::<Result<_, _>>()?;
        let [pl, pc, gl, gc]: [u64; 4] = cache_words
            .try_into()
            .map_err(|_| "bad cache arity".to_string())?;
        let n_outcomes: usize = parse(field(next()?, "outcomes")?)?;
        let mut outcomes = Vec::with_capacity(n_outcomes);
        for _ in 0..n_outcomes {
            let (constellation, rest) = take_quoted(field(next()?, "o")?)?;
            let words: Vec<u64> = rest
                .split_whitespace()
                .map(parse)
                .collect::<Result<_, _>>()?;
            let [received, transmitted, covered, mean_bits]: [u64; 4] = words
                .try_into()
                .map_err(|_| "bad outcome arity".to_string())?;
            outcomes.push(ConstellationOutcome {
                constellation,
                received,
                transmitted,
                covered_passes: covered,
                effective_min_mean: f64::from_bits(mean_bits),
            });
        }
        let sketch = match field(next()?, "sketch")? {
            "0" => None,
            "1" => {
                let total: u64 = parse(field(next()?, "total")?)?;
                let n_groups: usize = parse(field(next()?, "groups")?)?;
                let mut groups = Vec::with_capacity(n_groups);
                for _ in 0..n_groups {
                    let (constellation, rest) = take_quoted(field(next()?, "g")?)?;
                    let count: u64 = parse(rest)?;
                    let n_gsites: usize = parse(field(next()?, "gsites")?)?;
                    let mut gsites = Vec::with_capacity(n_gsites);
                    for _ in 0..n_gsites {
                        let (site, rest) = take_quoted(field(next()?, "gs")?)?;
                        gsites.push((site, parse::<u64>(rest)?));
                    }
                    let mut metrics = Vec::with_capacity(4);
                    for label in ["rssi", "snr", "dist", "elev"] {
                        metrics.push(decode_metric(&mut next, label)?);
                    }
                    let [rssi_dbm, snr_db, distance_km, elevation_deg]: [MetricSketch; 4] =
                        metrics.try_into().expect("four metrics decoded");
                    groups.push(ConstellationSketch {
                        constellation,
                        count,
                        rssi_dbm,
                        snr_db,
                        distance_km,
                        elevation_deg,
                        sites: gsites,
                    });
                }
                Some(TraceAggregate { total, groups })
            }
            v => return Err(format!("bad sketch flag {v:?}")),
        };
        Ok(JobRecord {
            job: decoded_job,
            fingerprint,
            rng_state,
            resumed: true,
            traces_total,
            emitted,
            faults,
            constellations: outcomes,
            cache: CacheAttribution {
                pass_lookups: pl,
                pass_computes: pc,
                grid_lookups: gl,
                grid_computes: gc,
            },
            sketch,
        })
    }

    fn decode_metric<'a>(
        next: &mut impl FnMut() -> Result<&'a str, String>,
        label: &str,
    ) -> Result<MetricSketch, String> {
        let m_line = field(next()?, "m")?;
        let rest = m_line
            .strip_prefix(label)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| format!("expected metric {label:?}, got {m_line:?}"))?;
        let words: Vec<u64> = rest
            .split_whitespace()
            .map(parse)
            .collect::<Result<_, _>>()?;
        let [count, mean, m2, min, max, nf]: [u64; 6] = words
            .try_into()
            .map_err(|_| "bad summary arity".to_string())?;
        let summary = StreamSummary {
            count,
            mean: f64::from_bits(mean),
            m2: f64::from_bits(m2),
            min: f64::from_bits(min),
            max: f64::from_bits(max),
            non_finite_dropped: nf,
        };
        let words: Vec<u64> = field(next()?, "q")?
            .split_whitespace()
            .map(parse)
            .collect::<Result<_, _>>()?;
        let [width, qmin, qmax, qcount, qnf, n_buckets]: [u64; 6] = words
            .try_into()
            .map_err(|_| "bad quantile arity".to_string())?;
        let mut buckets = Vec::with_capacity(n_buckets as usize);
        for _ in 0..n_buckets {
            let line = field(next()?, "b")?;
            let (k, n) = line.split_once(' ').ok_or("bad bucket line")?;
            let k: i64 = k.parse().map_err(|_| "bad bucket key".to_string())?;
            buckets.push((k, parse::<u64>(n)?));
        }
        let quantiles = QuantileSketch::from_parts(
            f64::from_bits(width),
            f64::from_bits(qmin),
            f64::from_bits(qmax),
            qcount,
            qnf,
            buckets,
        )?;
        Ok(MetricSketch { summary, quantiles })
    }

    fn expect(line: &str, want: &str) -> Result<(), String> {
        if line == want {
            Ok(())
        } else {
            Err(format!("expected {want:?}, got {line:?}"))
        }
    }

    /// Strip `"<key> "` from the line.
    fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
        line.strip_prefix(key)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| format!("expected field {key:?}, got {line:?}"))
    }

    /// Split a leading quoted name off the line (names never contain
    /// quotes; [`SweepJob::to_config`] enforces it for tags and the
    /// catalogs guarantee it for site/constellation names).
    pub(super) fn take_quoted(s: &str) -> Result<(String, &str), String> {
        let s = s.strip_prefix('"').ok_or("expected opening quote")?;
        let end = s.find('"').ok_or("missing closing quote")?;
        Ok((s[..end].to_string(), s[end + 1..].trim_start()))
    }

    fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
        s.trim().parse().map_err(|_| format!("bad number {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_job(tag: &str, seed: u64) -> SweepJob {
        // One site, one small constellation, a fraction of a day: fast
        // enough for unit tests while still exercising real passes.
        SweepJob::new(tag, seed)
            .with_max_days(0.4)
            .with_sites(["HK"])
            .with_constellations(["FOSSA"])
    }

    #[test]
    fn job_validation_rejects_bad_specs() {
        let assert_invalid = |job: SweepJob| {
            assert!(job.to_config().is_err(), "{job:?} should be rejected");
        };
        assert_invalid(SweepJob::new("", 1));
        assert_invalid(SweepJob::new("tab\tchar", 1));
        assert_invalid(SweepJob::new("quo\"te", 1));
        assert_invalid(SweepJob::new("ok", 1).with_max_days(f64::NAN));
        assert_invalid(SweepJob::new("ok", 1).with_max_days(0.0));
        assert_invalid(SweepJob::new("ok", 1).with_sites(["ATLANTIS"]));
        assert_invalid(SweepJob::new("ok", 1).with_sites(["HK", "HK"]));
        assert_invalid(SweepJob::new("ok", 1).with_constellations(["IRIDIUM_NEXT_XXL"]));
        assert!(quick_job("ok", 1).to_config().is_ok());
    }

    #[test]
    fn job_selection_is_order_independent() {
        let a = SweepJob::new("a", 1)
            .with_sites(["HK", "SH"])
            .to_config()
            .unwrap();
        let b = SweepJob::new("b", 1)
            .with_sites(["SH", "HK"])
            .to_config()
            .unwrap();
        let codes = |cfg: &PassiveConfig| cfg.sites.iter().map(|s| s.code).collect::<Vec<_>>();
        assert_eq!(codes(&a), codes(&b), "catalog order must win");
        assert_eq!(a.sites.len(), 2);
    }

    #[test]
    fn fingerprints_separate_every_spec_dimension() {
        let base = quick_job("t", 1);
        let variants = [
            quick_job("u", 1),
            quick_job("t", 2),
            quick_job("t", 1).with_max_days(0.5),
            quick_job("t", 1).with_scheduler(SchedulerKind::Vanilla { dwell_s: 60.0 }),
            quick_job("t", 1).with_sites(["SH"]),
            quick_job("t", 1).with_constellations(["PICO"]),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
            assert!(!base.same_spec(v), "{v:?}");
        }
        assert_eq!(base.fingerprint(), quick_job("t", 1).fingerprint());
    }

    #[test]
    fn checkpoint_codec_round_trips_bit_exactly() {
        let job = quick_job("codec", 11);
        let outcome = SweepServer::new(RunOptions::default())
            .run(std::slice::from_ref(&job))
            .unwrap();
        let record = &outcome.records[0];
        assert!(record.sketch.is_some(), "aggregate sink must sketch");
        let text = codec::encode(record);
        let decoded = codec::decode(&text, &job).expect("round trip");
        assert!(decoded.resumed);
        assert!(decoded.same_results(record));
        // Full equality too, once provenance is aligned.
        let mut aligned = decoded.clone();
        aligned.resumed = false;
        assert_eq!(&aligned, record);

        // Any flipped byte in the body must be rejected by checksum.
        let mut corrupt = text.clone().into_bytes();
        let mid = corrupt.len() / 2;
        corrupt[mid] = corrupt[mid].wrapping_add(1);
        let corrupt = String::from_utf8_lossy(&corrupt).into_owned();
        assert!(codec::decode(&corrupt, &job).is_err());
        // A checkpoint for one job never loads for another.
        assert!(codec::decode(&text, &quick_job("codec", 12)).is_err());
    }

    #[test]
    fn sweep_amortises_caches_across_jobs() {
        // Same scenario, different seeds: pass lists and grids are
        // shared, so only the first job predicts. A day cap no other
        // test uses keeps this test's cache keys private, so parallel
        // test execution cannot pre-warm or perturb the attribution.
        let jobs: Vec<SweepJob> = (0..3)
            .map(|i| quick_job(&format!("amort-{i}"), 40 + i).with_max_days(0.37))
            .collect();
        let outcome = SweepServer::new(RunOptions::default()).run(&jobs).unwrap();
        assert_eq!(outcome.records.len(), 3);
        assert_eq!(outcome.jobs_run, 3);
        let first = &outcome.records[0].cache;
        assert_eq!(first.pass_lookups, first.pass_computes);
        assert!(first.pass_computes > 0, "cold job must predict");
        for warm in &outcome.records[1..] {
            assert_eq!(warm.cache.pass_computes, 0, "warm job predicted");
            assert_eq!(warm.cache.grid_computes, 0, "warm job rebuilt grids");
            assert!(warm.cache.pass_hits() > 0);
        }
        // Merged sketch equals the per-record merge by construction.
        let mut manual = TraceAggregate::new();
        for r in &outcome.records {
            manual.merge(r.sketch.as_ref().unwrap());
        }
        assert_eq!(outcome.merged, manual);
    }

    #[test]
    fn kill_free_resume_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("satiot_sweep_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs: Vec<SweepJob> = (0..3)
            .map(|i| quick_job(&format!("res-{i}"), 70 + i))
            .collect();
        let server = SweepServer::new(RunOptions::default()).with_spill_dir(Some(&dir));

        let cold = server.run(&jobs).unwrap();
        assert_eq!(cold.jobs_run, 3);
        assert_eq!(cold.jobs_resumed, 0);

        // Second run: everything resumes, nothing re-executes, results
        // identical bit for bit.
        let resumed = server.run(&jobs).unwrap();
        assert_eq!(resumed.jobs_run, 0);
        assert_eq!(resumed.jobs_resumed, 3);
        assert!(resumed.same_results(&cold));

        // Drop one checkpoint: exactly that job re-runs, results still
        // identical.
        std::fs::remove_file(checkpoint_path(&dir, &jobs[1])).unwrap();
        let partial = server.run(&jobs).unwrap();
        assert_eq!(partial.jobs_run, 1);
        assert_eq!(partial.jobs_resumed, 2);
        assert!(partial.same_results(&cold));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shards_partition_the_queue_and_merge_exactly() {
        let jobs: Vec<SweepJob> = (0..4)
            .map(|i| quick_job(&format!("shard-{i}"), 90 + i))
            .collect();
        let whole = SweepServer::new(RunOptions::default()).run(&jobs).unwrap();
        let shard0 = SweepServer::new(RunOptions::default())
            .with_shard(Some((0, 2)))
            .run(&jobs)
            .unwrap();
        let shard1 = SweepServer::new(RunOptions::default())
            .with_shard(Some((1, 2)))
            .run(&jobs)
            .unwrap();
        assert_eq!(shard0.records.len(), 2);
        assert_eq!(shard0.jobs_skipped, 2);
        assert_eq!(shard1.records.len(), 2);
        // Round-robin assignment.
        assert_eq!(shard0.records[0].job.tag, "shard-0");
        assert_eq!(shard1.records[0].job.tag, "shard-1");
        // The shards' merged sketches fold into the whole-queue result
        // exactly (merge is associative and commutative on counts).
        let mut folded = TraceAggregate::new();
        for r in shard0.records.iter().chain(&shard1.records) {
            folded.merge(r.sketch.as_ref().unwrap());
        }
        assert_eq!(folded.total, whole.merged.total);
        // Per-record results match the whole-queue run job for job.
        for r in shard0.records.iter().chain(&shard1.records) {
            let whole_r = whole
                .records
                .iter()
                .find(|w| w.fingerprint == r.fingerprint)
                .unwrap();
            assert!(r.same_results(whole_r));
        }
    }

    #[test]
    fn duplicate_jobs_and_bad_shards_are_rejected() {
        let job = quick_job("dup", 5);
        let err = SweepServer::new(RunOptions::default())
            .run(&[job.clone(), job.clone()])
            .unwrap_err();
        assert!(matches!(err, SatIotError::InvalidName { .. }), "{err:?}");
        let err = SweepServer::new(RunOptions::default())
            .with_shard(Some((2, 2)))
            .run(std::slice::from_ref(&job))
            .unwrap_err();
        assert!(matches!(err, SatIotError::InvalidConfig { .. }), "{err:?}");
    }
}
