//! The shared pass-prediction cache behind every campaign sweep.
//!
//! Pass prediction (SGP4 propagation + crossing refinement over weeks of
//! simulated time) dominates campaign setup, yet the same *(site,
//! satellite, time range, mask)* pass list used to be recomputed from
//! scratch by `PassiveCampaign::run`, again by `theoretical_daily_hours`,
//! and once more per configuration inside every ablation binary. This
//! module memoises them process-wide: the first request for a key
//! computes the list (exactly once, even under concurrent access from
//! the sweep pool), and every later request — a re-run with a different
//! scheduler, a second campaign in the same ablation, a determinism
//! smoke pass — returns the shared `Arc` instantly.
//!
//! Prediction is a pure function of the key (no RNG is involved), so
//! caching cannot perturb campaign determinism: a cached list is
//! bit-identical to a fresh computation.
//!
//! ```
//! use satiot_core::sweep::{passes_for, PassKey};
//! use satiot_orbit::elements::Elements;
//! use satiot_orbit::frames::Geodetic;
//! use satiot_orbit::pass::PassPredictor;
//! use satiot_orbit::time::JulianDate;
//!
//! let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
//! let site = Geodetic::from_degrees(22.32, 114.17, 0.05);
//! let key = PassKey::new("HK", "DOC", 1, epoch, epoch + 1.0, 0.0);
//! let make = || {
//!     let sgp4 = Elements::circular(550.0, 97.6, epoch).to_sgp4().unwrap();
//!     PassPredictor::new(sgp4, site, 0.0)
//! };
//! let first = passes_for(key, make);
//! let again = passes_for(key, make); // Served from the cache.
//! assert!(std::sync::Arc::ptr_eq(&first, &again));
//! ```

use satiot_obs::metrics::{Counter, Gauge};
use satiot_orbit::pass::{Pass, PassPredictor};
use satiot_orbit::time::JulianDate;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache lookups served without predicting (metrics).
static CACHE_HITS: Counter = Counter::new("core.sweep.pass_cache_hits");
/// Cache lookups that triggered a prediction (metrics).
static CACHE_MISSES: Counter = Counter::new("core.sweep.pass_cache_misses");
/// Distinct pass lists currently cached (metrics).
static CACHE_ENTRIES: Gauge = Gauge::new("core.sweep.pass_cache_entries");

// The proof-of-work counters behind [`stats`] are plain atomics rather
// than obs counters so they report even when `SATIOT_METRICS` is off
// (the determinism smoke and `reproduce_all` assert on them).
static LOOKUPS: AtomicU64 = AtomicU64::new(0);
static COMPUTES: AtomicU64 = AtomicU64::new(0);

/// Identity of one cached pass list.
///
/// Two predictions may share a list only when *everything* that feeds
/// the predictor matches: the site (by code), the satellite (by
/// constellation + id), the scan range, and the elevation mask. The
/// `f64` range/mask fields are keyed by their exact bit patterns, so
/// even sub-ulp differences key separately — correctness over hit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PassKey {
    /// Site code (`"HK"`, a ground-station name, `"YUNNAN_FARM"`, …).
    pub site: &'static str,
    /// Constellation label.
    pub constellation: &'static str,
    /// Satellite id within the constellation.
    pub sat_id: u32,
    /// Scan start (`JulianDate` bits).
    pub start_bits: u64,
    /// Scan end (`JulianDate` bits).
    pub end_bits: u64,
    /// Elevation mask in radians (bits).
    pub mask_bits: u64,
}

impl PassKey {
    /// Build a key from the predictor's natural inputs.
    pub fn new(
        site: &'static str,
        constellation: &'static str,
        sat_id: u32,
        start: JulianDate,
        end: JulianDate,
        mask_rad: f64,
    ) -> PassKey {
        PassKey {
            site,
            constellation,
            sat_id,
            start_bits: start.0.to_bits(),
            end_bits: end.0.to_bits(),
            mask_bits: mask_rad.to_bits(),
        }
    }

    /// The scan range encoded in the key.
    pub fn range(&self) -> (JulianDate, JulianDate) {
        (
            JulianDate(f64::from_bits(self.start_bits)),
            JulianDate(f64::from_bits(self.end_bits)),
        )
    }
}

type Entry = Arc<OnceLock<Arc<Vec<Pass>>>>;

fn cache() -> &'static Mutex<HashMap<PassKey, Entry>> {
    static CACHE: OnceLock<Mutex<HashMap<PassKey, Entry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The pass list for `key`, predicting it with `make_predictor` on the
/// first request and serving the shared list afterwards.
///
/// The map lock is held only to resolve the entry slot; the prediction
/// itself runs outside it, so concurrent lookups of *different* keys
/// predict in parallel while concurrent lookups of the *same* key block
/// on one computation (`OnceLock` guarantees exactly-once).
pub fn passes_for<F>(key: PassKey, make_predictor: F) -> Arc<Vec<Pass>>
where
    F: FnOnce() -> PassPredictor,
{
    LOOKUPS.fetch_add(1, Relaxed);
    let entry: Entry = {
        let mut map = cache().lock().expect("pass cache poisoned");
        let entry = Arc::clone(map.entry(key).or_default());
        CACHE_ENTRIES.set(map.len() as i64);
        entry
    };
    let mut computed = false;
    let passes = entry
        .get_or_init(|| {
            computed = true;
            COMPUTES.fetch_add(1, Relaxed);
            CACHE_MISSES.inc();
            let (start, end) = key.range();
            Arc::new(make_predictor().passes(start, end))
        })
        .clone();
    if !computed {
        CACHE_HITS.inc();
    }
    passes
}

/// A snapshot of the cache's proof-of-work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total [`passes_for`] calls.
    pub lookups: u64,
    /// Lookups that ran a prediction. `computes == entries` proves every
    /// cached pass list was predicted exactly once this process.
    pub computes: u64,
    /// Distinct keys currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Lookups served without predicting.
    pub fn hits(&self) -> u64 {
        self.lookups - self.computes
    }
}

/// Read the cache counters.
pub fn stats() -> CacheStats {
    let entries = cache().lock().expect("pass cache poisoned").len();
    CacheStats {
        lookups: LOOKUPS.load(Relaxed),
        computes: COMPUTES.load(Relaxed),
        entries,
    }
}

/// Drop every cached pass list and zero the counters (benches measuring
/// cold-cache sweeps; long-lived processes rotating TLE epochs).
pub fn clear() {
    let mut map = cache().lock().expect("pass cache poisoned");
    map.clear();
    CACHE_ENTRIES.set(0);
    LOOKUPS.store(0, Relaxed);
    COMPUTES.store(0, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_orbit::elements::Elements;
    use satiot_orbit::frames::Geodetic;
    use std::sync::atomic::AtomicUsize;

    fn epoch() -> JulianDate {
        JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0)
    }

    fn make_predictor() -> PassPredictor {
        let sgp4 = Elements::circular(550.0, 97.6, epoch()).to_sgp4().unwrap();
        PassPredictor::new(sgp4, Geodetic::from_degrees(22.32, 114.17, 0.05), 0.0)
    }

    // Keys below use test-only site codes, so they cannot collide with
    // the campaign tests that share this process's global cache.

    #[test]
    fn second_lookup_shares_the_first_list() {
        let key = PassKey::new("TEST_SHARE", "T", 0, epoch(), epoch() + 1.0, 0.0);
        let built = AtomicUsize::new(0);
        let make = || {
            built.fetch_add(1, Relaxed);
            make_predictor()
        };
        let a = passes_for(key, make);
        let b = passes_for(key, make);
        assert_eq!(built.load(Relaxed), 1, "predictor built twice");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_empty());
        // The cached list matches a fresh prediction bit-for-bit.
        let fresh = make_predictor().passes(epoch(), epoch() + 1.0);
        assert_eq!(*a, fresh);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let k1 = PassKey::new("TEST_DISTINCT", "T", 0, epoch(), epoch() + 1.0, 0.0);
        let k2 = PassKey::new("TEST_DISTINCT", "T", 0, epoch(), epoch() + 2.0, 0.0);
        let k3 = PassKey::new("TEST_DISTINCT", "T", 1, epoch(), epoch() + 1.0, 0.0);
        let a = passes_for(k1, make_predictor);
        let b = passes_for(k2, make_predictor);
        let c = passes_for(k3, make_predictor);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(b.len() >= a.len(), "wider range lost passes");
    }

    #[test]
    fn concurrent_same_key_computes_exactly_once() {
        let key = PassKey::new("TEST_CONCURRENT", "T", 0, epoch(), epoch() + 1.0, 0.0);
        let built = AtomicUsize::new(0);
        let lists: Vec<Arc<Vec<Pass>>> =
            satiot_sim::pool::parallel_map_with(&[(); 16], 8, |_, _| {
                passes_for(key, || {
                    built.fetch_add(1, Relaxed);
                    make_predictor()
                })
            });
        assert_eq!(built.load(Relaxed), 1, "racing lookups predicted twice");
        for l in &lists {
            assert!(Arc::ptr_eq(&lists[0], l));
        }
    }
}
