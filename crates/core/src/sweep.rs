//! The shared pass-prediction cache behind every campaign sweep.
//!
//! Pass prediction (SGP4 propagation + crossing refinement over weeks of
//! simulated time) dominates campaign setup, yet the same *(site,
//! satellite, time range, mask)* pass list used to be recomputed from
//! scratch by `PassiveCampaign::run`, again by `theoretical_daily_hours`,
//! and once more per configuration inside every ablation binary. This
//! module memoises them process-wide: the first request for a key
//! computes the list (exactly once, even under concurrent access from
//! the sweep pool), and every later request — a re-run with a different
//! scheduler, a second campaign in the same ablation, a determinism
//! smoke pass — returns the shared `Arc` instantly.
//!
//! Prediction is a pure function of the key (no RNG is involved), so
//! caching cannot perturb campaign determinism: a cached list is
//! bit-identical to a fresh computation.
//!
//! ```
//! use satiot_core::sweep::{passes_for, PassKey};
//! use satiot_orbit::elements::Elements;
//! use satiot_orbit::frames::Geodetic;
//! use satiot_orbit::pass::PassPredictor;
//! use satiot_orbit::time::JulianDate;
//!
//! let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
//! let site = Geodetic::from_degrees(22.32, 114.17, 0.05);
//! let key = PassKey::new("HK", "DOC", 1, epoch, epoch + 1.0, 0.0);
//! let make = || {
//!     let sgp4 = Elements::circular(550.0, 97.6, epoch).to_sgp4().unwrap();
//!     Some(PassPredictor::new(sgp4, site, 0.0))
//! };
//! let first = passes_for(key, make);
//! let again = passes_for(key, make); // Served from the cache.
//! assert!(std::sync::Arc::ptr_eq(&first, &again));
//! ```

use satiot_obs::metrics::{Counter, Gauge};
use satiot_orbit::cull::{self, CullingMode};
use satiot_orbit::ephemeris::{self, EphemerisGrid, EphemerisMode};
use satiot_orbit::frames::Geodetic;
use satiot_orbit::pass::{Pass, PassPredictor};
use satiot_orbit::sgp4::Sgp4;
use satiot_orbit::time::JulianDate;
use satiot_orbit::visibility::{self, VisibilityMode};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache lookups served without predicting (metrics).
static CACHE_HITS: Counter = Counter::new("core.sweep.pass_cache_hits");
/// Cache lookups that triggered a prediction (metrics).
static CACHE_MISSES: Counter = Counter::new("core.sweep.pass_cache_misses");
/// Distinct pass lists currently cached (metrics).
static CACHE_ENTRIES: Gauge = Gauge::new("core.sweep.pass_cache_entries");
/// Grid-store lookups served without building (metrics).
static GRID_HITS: Counter = Counter::new("core.sweep.grid_hits");
/// Grid-store lookups that built a grid (metrics).
static GRID_MISSES: Counter = Counter::new("core.sweep.grid_misses");
/// Distinct ephemeris grids currently stored (metrics).
static GRID_ENTRIES: Gauge = Gauge::new("core.sweep.grid_entries");

// The proof-of-work counters behind [`stats`] are plain atomics rather
// than obs counters so they report even when `SATIOT_METRICS` is off
// (the determinism smoke and `reproduce_all` assert on them).
static LOOKUPS: AtomicU64 = AtomicU64::new(0);
static COMPUTES: AtomicU64 = AtomicU64::new(0);
static GRID_LOOKUPS: AtomicU64 = AtomicU64::new(0);
static GRID_COMPUTES: AtomicU64 = AtomicU64::new(0);

/// Intern `s` into a process-lived string, so cache keys stay `Copy`
/// (`&'static str` fields) without forcing *callers* with
/// dynamically-named sites to leak one allocation per call: each
/// distinct name is leaked exactly once, and every later interning of
/// the same text returns the same pointer. The table only ever holds
/// site/constellation names, so it is bounded by the catalog size.
pub fn intern(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern table poisoned");
    match table.get(s) {
        Some(interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
            table.insert(leaked);
            leaked
        }
    }
}

/// Identity of one cached pass list.
///
/// Two predictions may share a list only when *everything* that feeds
/// the predictor matches: the site (by code), the satellite (by
/// constellation + id), the scan range, and the elevation mask. The
/// `f64` range/mask fields are keyed by their exact bit patterns, so
/// even sub-ulp differences key separately — correctness over hit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PassKey {
    /// Site code (`"HK"`, a ground-station name, `"YUNNAN_FARM"`, …).
    pub site: &'static str,
    /// Constellation label.
    pub constellation: &'static str,
    /// Satellite id within the constellation.
    pub sat_id: u32,
    /// Scan start (`JulianDate` bits).
    pub start_bits: u64,
    /// Scan end (`JulianDate` bits).
    pub end_bits: u64,
    /// Elevation mask in radians (bits).
    pub mask_bits: u64,
}

impl PassKey {
    /// Build a key from the predictor's natural inputs.
    ///
    /// Names are interned (see [`intern`]), so callers may pass borrowed
    /// or dynamically-built strings; the key itself stays `Copy`.
    pub fn new(
        site: &str,
        constellation: &str,
        sat_id: u32,
        start: JulianDate,
        end: JulianDate,
        mask_rad: f64,
    ) -> PassKey {
        PassKey {
            site: intern(site),
            constellation: intern(constellation),
            sat_id,
            start_bits: start.0.to_bits(),
            end_bits: end.0.to_bits(),
            mask_bits: mask_rad.to_bits(),
        }
    }

    /// The scan range encoded in the key.
    pub fn range(&self) -> (JulianDate, JulianDate) {
        (
            JulianDate(f64::from_bits(self.start_bits)),
            JulianDate(f64::from_bits(self.end_bits)),
        )
    }
}

type Entry = Arc<OnceLock<Arc<Vec<Pass>>>>;

fn cache() -> &'static Mutex<HashMap<PassKey, Entry>> {
    static CACHE: OnceLock<Mutex<HashMap<PassKey, Entry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The pass list for `key`, predicting it with `make_predictor` on the
/// first request and serving the shared list afterwards.
///
/// `make_predictor` returning `None` means the pair was proven empty
/// without prediction (the spatial pre-cull, see [`satiot_orbit::cull`])
/// and caches an empty list — bit-identical to what the predictor would
/// have returned, because the cull is conservative.
///
/// The map lock is held only to resolve the entry slot; the prediction
/// itself runs outside it, so concurrent lookups of *different* keys
/// predict in parallel while concurrent lookups of the *same* key block
/// on one computation (`OnceLock` guarantees exactly-once).
pub fn passes_for<F>(key: PassKey, make_predictor: F) -> Arc<Vec<Pass>>
where
    F: FnOnce() -> Option<PassPredictor>,
{
    LOOKUPS.fetch_add(1, Relaxed);
    let entry: Entry = {
        let mut map = cache().lock().expect("pass cache poisoned");
        let entry = Arc::clone(map.entry(key).or_default());
        CACHE_ENTRIES.set(map.len() as i64);
        entry
    };
    let mut computed = false;
    let passes = entry
        .get_or_init(|| {
            computed = true;
            COMPUTES.fetch_add(1, Relaxed);
            CACHE_MISSES.inc();
            let (start, end) = key.range();
            match make_predictor() {
                Some(predictor) => Arc::new(predictor.passes(start, end)),
                None => Arc::new(Vec::new()),
            }
        })
        .clone();
    if !computed {
        CACHE_HITS.inc();
    }
    passes
}

/// A snapshot of the cache's proof-of-work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total [`passes_for`] calls.
    pub lookups: u64,
    /// Lookups that ran a prediction. `computes == entries` proves every
    /// cached pass list was predicted exactly once this process.
    pub computes: u64,
    /// Distinct keys currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Lookups served without predicting.
    pub fn hits(&self) -> u64 {
        self.lookups - self.computes
    }
}

/// Read the cache counters.
pub fn stats() -> CacheStats {
    let entries = cache().lock().expect("pass cache poisoned").len();
    CacheStats {
        lookups: LOOKUPS.load(Relaxed),
        computes: COMPUTES.load(Relaxed),
        entries,
    }
}

/// Drop every cached pass list *and* every stored ephemeris grid, and
/// zero both sets of counters (benches measuring cold-cache sweeps;
/// long-lived processes rotating TLE epochs).
pub fn clear() {
    let mut map = cache().lock().expect("pass cache poisoned");
    map.clear();
    CACHE_ENTRIES.set(0);
    LOOKUPS.store(0, Relaxed);
    COMPUTES.store(0, Relaxed);
    drop(map);
    let mut grids = grid_store().lock().expect("grid store poisoned");
    grids.clear();
    GRID_ENTRIES.set(0);
    GRID_LOOKUPS.store(0, Relaxed);
    GRID_COMPUTES.store(0, Relaxed);
}

/// Identity of one shared ephemeris grid.
///
/// Unlike [`PassKey`], the site and elevation mask are deliberately
/// *absent*: a grid samples the satellite's ECEF trajectory, which does
/// not depend on who is watching. Every observer — eight measurement
/// sites, twelve ground stations, any mask — over the same `(satellite,
/// window)` shares one grid, and that sharing is the whole point of the
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridKey {
    /// Constellation label (interned).
    pub constellation: &'static str,
    /// Satellite id within the constellation.
    pub sat_id: u32,
    /// Scan start (`JulianDate` bits).
    pub start_bits: u64,
    /// Scan end (`JulianDate` bits).
    pub end_bits: u64,
}

impl GridKey {
    /// Build a key from the scan window's natural inputs.
    pub fn new(constellation: &str, sat_id: u32, start: JulianDate, end: JulianDate) -> GridKey {
        GridKey {
            constellation: intern(constellation),
            sat_id,
            start_bits: start.0.to_bits(),
            end_bits: end.0.to_bits(),
        }
    }

    /// The scan window encoded in the key.
    pub fn range(&self) -> (JulianDate, JulianDate) {
        (
            JulianDate(f64::from_bits(self.start_bits)),
            JulianDate(f64::from_bits(self.end_bits)),
        )
    }
}

type GridEntry = Arc<OnceLock<Arc<EphemerisGrid>>>;

fn grid_store() -> &'static Mutex<HashMap<GridKey, GridEntry>> {
    static GRIDS: OnceLock<Mutex<HashMap<GridKey, GridEntry>>> = OnceLock::new();
    GRIDS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The ephemeris grid for `key`, building it with `build` on the first
/// request and serving the shared grid afterwards.
///
/// Mirrors [`passes_for`]: the map lock is held only to resolve the
/// entry slot, the build runs outside it, and `OnceLock` guarantees the
/// expensive SGP4 sampling sweep happens exactly once per key even under
/// concurrent access from the sweep pool.
pub fn grid_for<F>(key: GridKey, build: F) -> Arc<EphemerisGrid>
where
    F: FnOnce() -> EphemerisGrid,
{
    GRID_LOOKUPS.fetch_add(1, Relaxed);
    let entry: GridEntry = {
        let mut map = grid_store().lock().expect("grid store poisoned");
        let entry = Arc::clone(map.entry(key).or_default());
        GRID_ENTRIES.set(map.len() as i64);
        entry
    };
    let mut computed = false;
    let grid = entry
        .get_or_init(|| {
            computed = true;
            GRID_COMPUTES.fetch_add(1, Relaxed);
            GRID_MISSES.inc();
            Arc::new(build())
        })
        .clone();
    if !computed {
        GRID_HITS.inc();
    }
    grid
}

/// A snapshot of the grid store's proof-of-work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridStats {
    /// Total [`grid_for`] calls.
    pub lookups: u64,
    /// Lookups that built a grid. `computes == entries` proves every
    /// stored grid was sampled exactly once this process.
    pub computes: u64,
    /// Distinct grids currently stored.
    pub entries: usize,
}

impl GridStats {
    /// Lookups served without building.
    pub fn hits(&self) -> u64 {
        self.lookups - self.computes
    }
}

/// Read the grid-store counters.
pub fn grid_stats() -> GridStats {
    let entries = grid_store().lock().expect("grid store poisoned").len();
    GridStats {
        lookups: GRID_LOOKUPS.load(Relaxed),
        computes: GRID_COMPUTES.load(Relaxed),
        entries,
    }
}

/// Build the pass predictor every campaign driver uses for one
/// `(satellite, site, window)` triple, honouring the process-wide
/// [`ephemeris::mode`]:
///
/// * `Off` — a plain direct-SGP4 predictor, bit-identical to the
///   pre-ephemeris pipeline (the `SATIOT_EPHEMERIS=0` A/B baseline).
/// * `On` (default) — attaches the shared [`EphemerisGrid`] for the
///   satellite's window from [`grid_for`], so coarse scan, bisection
///   refinement, and culmination search all interpolate instead of
///   re-propagating.
/// * `Validate` — as `On`, but every freshly built grid is probed
///   against direct SGP4 and the process aborts if the accuracy
///   contract is violated (CI's `ephemeris_check` runs in this mode).
///
/// The predictor also carries the process-wide [`visibility::mode`]:
/// with a grid attached, `Scalar`/`On` replace the coarse elevation
/// scan with the bit-identical-pair margin sweeps over the grid's
/// columns (`SATIOT_VISIBILITY`); without a grid (`SATIOT_EPHEMERIS=0`)
/// the sweep has no columns to walk and the legacy scan runs
/// regardless.
///
/// Both the pooled predict phases and the legacy inline path construct
/// their predictors here, which is what keeps the drivers bit-identical:
/// they share not just the algorithm but the very same grid `Arc`s.
///
/// Returns `None` when the process-wide [`cull::mode`] is on and the
/// pair is provably invisible over the window (see
/// [`predictor_with_mode`]) — the pass list is empty by construction.
pub fn sat_predictor(
    constellation: &str,
    sat_id: u32,
    sgp4: &Sgp4,
    site: Geodetic,
    mask_rad: f64,
    start: JulianDate,
    end: JulianDate,
) -> Option<PassPredictor> {
    let key = GridKey::new(constellation, sat_id, start, end);
    predictor_with_mode(
        ephemeris::mode(),
        visibility::mode(),
        cull::mode(),
        key,
        sgp4,
        site,
        mask_rad,
    )
}

/// [`sat_predictor`] with every mode passed explicitly, so campaign
/// drivers can honour `RunOptions::ephemeris` / `RunOptions::visibility`
/// / `RunOptions::culling` overrides (and tests can exercise every
/// branch) without racing on the global mode latches.
///
/// With `culling` on, the pair runs the conservative spatial pre-cull
/// before any grid interpolation: the latitude-band test needs no
/// propagation at all, and the footprint-cone test scans only the
/// shared grid's raw samples. A culled pair returns `None` — its pass
/// list over the key's window is provably empty — and the always-on
/// `orbit.cull.*` proof counters record the decision. With `culling`
/// off no counter moves and every pair gets a predictor, bit-identical
/// to the pre-cull pipeline.
pub fn predictor_with_mode(
    mode: EphemerisMode,
    visibility: VisibilityMode,
    culling: CullingMode,
    key: GridKey,
    sgp4: &Sgp4,
    site: Geodetic,
    mask_rad: f64,
) -> Option<PassPredictor> {
    if culling == CullingMode::On {
        cull::record_considered();
        if cull::never_in_latitude_band(
            site,
            sgp4.inclination_rad(),
            sgp4.apogee_radius_km(),
            mask_rad,
        ) {
            cull::record_lat_band_cull();
            return None;
        }
    }
    let predictor = PassPredictor::new(sgp4.clone(), site, mask_rad).with_visibility(visibility);
    if mode == EphemerisMode::Off {
        if culling == CullingMode::On {
            cull::record_kept();
        }
        return Some(predictor);
    }
    let (start, end) = key.range();
    let grid = grid_for(key, || {
        let grid = EphemerisGrid::build(sgp4, start, end);
        if mode == EphemerisMode::Validate {
            let report = grid.validate(sgp4, 256);
            assert!(
                report.within_contract(),
                "ephemeris accuracy contract violated for {}/{} over {start:?}..{end:?}: {report:?}",
                key.constellation,
                key.sat_id,
            );
        }
        grid
    });
    if culling == CullingMode::On {
        if cull::cone_clears_grid(&grid, site, mask_rad, start, end) {
            cull::record_cone_cull();
            return None;
        }
        cull::record_kept();
    }
    Some(predictor.with_ephemeris(grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_orbit::elements::Elements;
    use satiot_orbit::frames::Geodetic;
    use std::sync::atomic::AtomicUsize;

    fn epoch() -> JulianDate {
        JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0)
    }

    fn make_predictor() -> PassPredictor {
        let sgp4 = Elements::circular(550.0, 97.6, epoch()).to_sgp4().unwrap();
        PassPredictor::new(sgp4, Geodetic::from_degrees(22.32, 114.17, 0.05), 0.0)
    }

    // Keys below use test-only site codes, so they cannot collide with
    // the campaign tests that share this process's global cache.

    #[test]
    fn second_lookup_shares_the_first_list() {
        let key = PassKey::new("TEST_SHARE", "T", 0, epoch(), epoch() + 1.0, 0.0);
        let built = AtomicUsize::new(0);
        let make = || {
            built.fetch_add(1, Relaxed);
            Some(make_predictor())
        };
        let a = passes_for(key, make);
        let b = passes_for(key, make);
        assert_eq!(built.load(Relaxed), 1, "predictor built twice");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_empty());
        // The cached list matches a fresh prediction bit-for-bit.
        let fresh = make_predictor().passes(epoch(), epoch() + 1.0);
        assert_eq!(*a, fresh);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let k1 = PassKey::new("TEST_DISTINCT", "T", 0, epoch(), epoch() + 1.0, 0.0);
        let k2 = PassKey::new("TEST_DISTINCT", "T", 0, epoch(), epoch() + 2.0, 0.0);
        let k3 = PassKey::new("TEST_DISTINCT", "T", 1, epoch(), epoch() + 1.0, 0.0);
        let a = passes_for(k1, || Some(make_predictor()));
        let b = passes_for(k2, || Some(make_predictor()));
        let c = passes_for(k3, || Some(make_predictor()));
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(b.len() >= a.len(), "wider range lost passes");
    }

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern("TEST_INTERN_SITE");
        let b = intern(&String::from("TEST_INTERN_SITE"));
        assert_eq!(a, "TEST_INTERN_SITE");
        assert!(std::ptr::eq(a, b), "same text interned to two pointers");
        // Keys built from borrowed strings equal keys built from literals.
        let owned = String::from("TEST_INTERN_SITE");
        let k1 = PassKey::new(&owned, "T", 0, epoch(), epoch() + 1.0, 0.0);
        let k2 = PassKey::new("TEST_INTERN_SITE", "T", 0, epoch(), epoch() + 1.0, 0.0);
        assert_eq!(k1, k2);
    }

    #[test]
    fn grid_store_builds_exactly_once_per_key() {
        let key = GridKey::new("TEST_GRID_ONCE", 0, epoch(), epoch() + 1.0);
        let built = AtomicUsize::new(0);
        let sgp4 = Elements::circular(550.0, 97.6, epoch()).to_sgp4().unwrap();
        let build = || {
            built.fetch_add(1, Relaxed);
            EphemerisGrid::build(&sgp4, epoch(), epoch() + 1.0)
        };
        let grids: Vec<Arc<EphemerisGrid>> =
            satiot_sim::pool::parallel_map_with(&[(); 16], 8, |_, _| grid_for(key, build));
        assert_eq!(built.load(Relaxed), 1, "racing lookups built twice");
        for g in &grids {
            assert!(Arc::ptr_eq(&grids[0], g));
        }
        assert!(!grids[0].is_empty());
    }

    #[test]
    fn predictor_modes_share_grids_and_match_direct() {
        let start = epoch();
        let end = epoch() + 1.0;
        let sgp4 = Elements::circular(550.0, 97.6, epoch()).to_sgp4().unwrap();
        let site_a = Geodetic::from_degrees(22.32, 114.17, 0.05);
        let site_b = Geodetic::from_degrees(23.13, 113.26, 0.02);
        let key = GridKey::new("TEST_MODES", 0, start, end);

        let off = predictor_with_mode(
            EphemerisMode::Off,
            VisibilityMode::Off,
            CullingMode::Off,
            key,
            &sgp4,
            site_a,
            0.0,
        )
        .expect("culling off never drops a pair");
        assert!(off.ephemeris().is_none(), "Off mode attached a grid");

        // Two observers over the same window share one grid Arc; the
        // Validate branch probes it against direct SGP4 on first build.
        // The gridded predictors run the default margin-sweep scan, so
        // this also pins sweep-vs-direct agreement end to end.
        let on_a = predictor_with_mode(
            EphemerisMode::Validate,
            VisibilityMode::On,
            CullingMode::Off,
            key,
            &sgp4,
            site_a,
            0.0,
        )
        .expect("culling off never drops a pair");
        let on_b = predictor_with_mode(
            EphemerisMode::On,
            VisibilityMode::On,
            CullingMode::Off,
            key,
            &sgp4,
            site_b,
            0.0,
        )
        .expect("culling off never drops a pair");
        let (ga, gb) = (on_a.ephemeris().unwrap(), on_b.ephemeris().unwrap());
        assert!(Arc::ptr_eq(ga, gb), "same window built two grids");

        // Grid-backed pass lists agree with direct prediction within the
        // documented contract; here the discretisation is fine enough
        // that pass counts must match exactly.
        let direct = off.passes(start, end);
        let gridded = on_a.passes(start, end);
        assert_eq!(direct.len(), gridded.len());
        for (d, g) in direct.iter().zip(&gridded) {
            assert!((d.aos.seconds_since(g.aos)).abs() < 0.1);
            assert!((d.los.seconds_since(g.los)).abs() < 0.1);
            assert!((d.max_elevation_rad - g.max_elevation_rad).abs() < 0.01_f64.to_radians());
        }
    }

    #[test]
    fn culling_drops_invisible_pairs_and_keeps_visible_ones() {
        let start = epoch();
        let end = epoch() + 0.5;
        // Low-inclination shell: never visible from a polar site.
        let sgp4 = Elements::circular(550.0, 20.0, epoch()).to_sgp4().unwrap();
        let polar = Geodetic::from_degrees(80.0, 10.0, 0.0);
        let equatorial = Geodetic::from_degrees(0.0, 10.0, 0.0);
        let key = GridKey::new("TEST_CULL", 0, start, end);

        let before = cull::stats();
        let culled = predictor_with_mode(
            EphemerisMode::On,
            VisibilityMode::On,
            CullingMode::On,
            key,
            &sgp4,
            polar,
            0.0,
        );
        assert!(culled.is_none(), "polar pair survived the lat-band cull");
        let kept = predictor_with_mode(
            EphemerisMode::On,
            VisibilityMode::On,
            CullingMode::On,
            key,
            &sgp4,
            equatorial,
            0.0,
        );
        let kept = kept.expect("equatorial pair must be kept");
        let after = cull::stats();
        assert_eq!(after.pairs_considered - before.pairs_considered, 2);
        assert_eq!(after.pairs_culled() - before.pairs_culled(), 1);
        assert_eq!(after.pairs_kept - before.pairs_kept, 1);

        // The kept pair's pass set is bit-identical to the unculled one.
        let unculled = predictor_with_mode(
            EphemerisMode::On,
            VisibilityMode::On,
            CullingMode::Off,
            key,
            &sgp4,
            equatorial,
            0.0,
        )
        .expect("culling off never drops a pair");
        assert_eq!(kept.passes(start, end), unculled.passes(start, end));
        // Culling off moves no counters.
        assert_eq!(cull::stats(), after);
    }

    #[test]
    fn concurrent_same_key_computes_exactly_once() {
        let key = PassKey::new("TEST_CONCURRENT", "T", 0, epoch(), epoch() + 1.0, 0.0);
        let built = AtomicUsize::new(0);
        let lists: Vec<Arc<Vec<Pass>>> =
            satiot_sim::pool::parallel_map_with(&[(); 16], 8, |_, _| {
                passes_for(key, || {
                    built.fetch_add(1, Relaxed);
                    Some(make_predictor())
                })
            });
        assert_eq!(built.load(Relaxed), 1, "racing lookups predicted twice");
        for l in &lists {
            assert!(Arc::ptr_eq(&lists[0], l));
        }
    }
}
