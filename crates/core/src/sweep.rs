//! The shared pass-prediction cache behind every campaign sweep.
//!
//! Pass prediction (SGP4 propagation + crossing refinement over weeks of
//! simulated time) dominates campaign setup, yet the same *(site,
//! satellite, time range, mask)* pass list used to be recomputed from
//! scratch by `PassiveCampaign::run`, again by `theoretical_daily_hours`,
//! and once more per configuration inside every ablation binary. This
//! module memoises them process-wide: the first request for a key
//! computes the list (exactly once, even under concurrent access from
//! the sweep pool), and every later request — a re-run with a different
//! scheduler, a second campaign in the same ablation, a determinism
//! smoke pass — returns the shared `Arc` instantly.
//!
//! Prediction is a pure function of the key (no RNG is involved), so
//! caching cannot perturb campaign determinism: a cached list is
//! bit-identical to a fresh computation.
//!
//! ```
//! use satiot_core::sweep::{passes_for, PassKey};
//! use satiot_orbit::elements::Elements;
//! use satiot_orbit::frames::Geodetic;
//! use satiot_orbit::pass::PassPredictor;
//! use satiot_orbit::time::JulianDate;
//!
//! let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
//! let site = Geodetic::from_degrees(22.32, 114.17, 0.05);
//! let key = PassKey::new("HK", "DOC", 1, epoch, epoch + 1.0, 0.0);
//! let make = || {
//!     let sgp4 = Elements::circular(550.0, 97.6, epoch).to_sgp4().unwrap();
//!     Some(PassPredictor::new(sgp4, site, 0.0))
//! };
//! let first = passes_for(key, make);
//! let again = passes_for(key, make); // Served from the cache.
//! assert!(std::sync::Arc::ptr_eq(&first, &again));
//! ```

use satiot_obs::metrics::{Counter, Gauge};
use satiot_orbit::cull::{self, CullingMode};
use satiot_orbit::ephemeris::{self, EphemerisGrid, EphemerisMode};
use satiot_orbit::frames::{Geodetic, StateEcef};
use satiot_orbit::pass::{Pass, PassPredictor};
use satiot_orbit::sgp4::Sgp4;
use satiot_orbit::time::JulianDate;
use satiot_orbit::visibility::{self, VisibilityMode};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Cache lookups served without predicting (metrics).
static CACHE_HITS: Counter = Counter::new("core.sweep.pass_cache_hits");
/// Cache lookups that triggered a prediction (metrics).
static CACHE_MISSES: Counter = Counter::new("core.sweep.pass_cache_misses");
/// Distinct pass lists currently cached (metrics).
static CACHE_ENTRIES: Gauge = Gauge::new("core.sweep.pass_cache_entries");
/// Pass lists evicted by budget enforcement (metrics).
static CACHE_EVICTED: Counter = Counter::new("core.sweep.pass_cache_evictions");
/// Grid-store lookups served without building (metrics).
static GRID_HITS: Counter = Counter::new("core.sweep.grid_hits");
/// Grid-store lookups that built a grid (metrics).
static GRID_MISSES: Counter = Counter::new("core.sweep.grid_misses");
/// Distinct ephemeris grids currently stored (metrics).
static GRID_ENTRIES: Gauge = Gauge::new("core.sweep.grid_entries");
/// Grids evicted by budget enforcement (metrics).
static GRID_EVICTED: Counter = Counter::new("core.sweep.grid_evictions");

// The proof-of-work counters behind [`stats`] are plain atomics rather
// than obs counters so they report even when `SATIOT_METRICS` is off
// (the determinism smoke and `reproduce_all` assert on them).
static LOOKUPS: AtomicU64 = AtomicU64::new(0);
static COMPUTES: AtomicU64 = AtomicU64::new(0);
static PASS_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static GRID_LOOKUPS: AtomicU64 = AtomicU64::new(0);
static GRID_COMPUTES: AtomicU64 = AtomicU64::new(0);
static GRID_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Monotone LRU clock shared by both stores, so one cross-store
/// eviction pass can order pass lists and grids on a single recency
/// axis. Ticks only ever move forward; wraparound is unreachable
/// (2⁶⁴ lookups).
static CLOCK: AtomicU64 = AtomicU64::new(0);

/// Combined payload budget for [`enforce_cache_budget`], in bytes.
/// `u64::MAX` is the "no budget" sentinel (the default): eviction is
/// entirely disabled, preserving the exactly-once `computes == entries`
/// invariant `determinism_smoke` pins.
static BUDGET_BYTES: AtomicU64 = AtomicU64::new(u64::MAX);

/// Intern `s` into a process-lived string, so cache keys stay `Copy`
/// (`&'static str` fields) without forcing *callers* with
/// dynamically-named sites to leak one allocation per call: each
/// distinct name is leaked exactly once, and every later interning of
/// the same text returns the same pointer. The table only ever holds
/// site/constellation names, so it is bounded by the catalog size.
pub fn intern(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern table poisoned");
    match table.get(s) {
        Some(interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
            table.insert(leaked);
            leaked
        }
    }
}

/// Identity of one cached pass list.
///
/// Two predictions may share a list only when *everything* that feeds
/// the predictor matches: the site (by code), the satellite (by
/// constellation + id), the scan range, and the elevation mask. The
/// `f64` range/mask fields are keyed by their exact bit patterns, so
/// even sub-ulp differences key separately — correctness over hit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PassKey {
    /// Site code (`"HK"`, a ground-station name, `"YUNNAN_FARM"`, …).
    pub site: &'static str,
    /// Constellation label.
    pub constellation: &'static str,
    /// Satellite id within the constellation.
    pub sat_id: u32,
    /// Scan start (`JulianDate` bits).
    pub start_bits: u64,
    /// Scan end (`JulianDate` bits).
    pub end_bits: u64,
    /// Elevation mask in radians (bits).
    pub mask_bits: u64,
}

impl PassKey {
    /// Build a key from the predictor's natural inputs.
    ///
    /// Names are interned (see [`intern`]), so callers may pass borrowed
    /// or dynamically-built strings; the key itself stays `Copy`.
    pub fn new(
        site: &str,
        constellation: &str,
        sat_id: u32,
        start: JulianDate,
        end: JulianDate,
        mask_rad: f64,
    ) -> PassKey {
        PassKey {
            site: intern(site),
            constellation: intern(constellation),
            sat_id,
            start_bits: start.0.to_bits(),
            end_bits: end.0.to_bits(),
            mask_bits: mask_rad.to_bits(),
        }
    }

    /// The scan range encoded in the key.
    pub fn range(&self) -> (JulianDate, JulianDate) {
        (
            JulianDate(f64::from_bits(self.start_bits)),
            JulianDate(f64::from_bits(self.end_bits)),
        )
    }
}

/// One memoisation slot: the exactly-once cell plus the recency stamp
/// budget enforcement orders evictions by.
#[derive(Debug)]
struct Slot<T> {
    cell: OnceLock<Arc<T>>,
    /// [`CLOCK`] tick of the most recent lookup.
    last_used: AtomicU64,
}

impl<T> Default for Slot<T> {
    fn default() -> Slot<T> {
        Slot {
            cell: OnceLock::new(),
            last_used: AtomicU64::new(0),
        }
    }
}

/// A keyed exactly-once memoisation store — the shared implementation
/// behind the pass cache and the grid store. Generic so the eviction
/// machinery (and its tests) can run on private instances without
/// perturbing the process-wide caches every campaign test shares.
#[derive(Debug)]
struct Store<K, T> {
    map: Mutex<HashMap<K, Arc<Slot<T>>>>,
}

impl<K: Copy + Eq + Hash, T> Store<K, T> {
    fn new() -> Store<K, T> {
        Store {
            map: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<K, Arc<Slot<T>>>> {
        self.map.lock().expect("sweep store poisoned")
    }

    /// Resolve the slot for `key` (inserting an empty one if absent),
    /// stamp its recency tick, and run `make` if the cell is empty.
    /// Returns `(payload, computed_here, map_len)`. The map lock is
    /// held only to resolve the slot; the computation runs outside it,
    /// so distinct keys compute in parallel while racing lookups of the
    /// same key block on one computation (`OnceLock` exactly-once).
    fn get_or_compute<F: FnOnce() -> T>(&self, key: K, make: F) -> (Arc<T>, bool, usize) {
        let (slot, len) = {
            let mut map = self.lock();
            let slot = Arc::clone(map.entry(key).or_default());
            (slot, map.len())
        };
        slot.last_used
            .store(CLOCK.fetch_add(1, Relaxed) + 1, Relaxed);
        let mut computed = false;
        let value = slot
            .cell
            .get_or_init(|| {
                computed = true;
                Arc::new(make())
            })
            .clone();
        (value, computed, len)
    }

    fn len(&self) -> usize {
        self.lock().len()
    }

    fn clear(&self) {
        self.lock().clear();
    }

    /// Sum of `payload_bytes` over every *computed* slot. Slots whose
    /// computation is still in flight are counted as zero — their cost
    /// is attributed once the cell fills.
    fn approx_bytes(&self, payload_bytes: impl Fn(&T) -> u64) -> u64 {
        self.lock()
            .values()
            .filter_map(|s| s.cell.get())
            .map(|v| payload_bytes(v))
            .sum()
    }
}

fn cache() -> &'static Store<PassKey, Vec<Pass>> {
    static CACHE: OnceLock<Store<PassKey, Vec<Pass>>> = OnceLock::new();
    CACHE.get_or_init(Store::new)
}

/// Approximate heap payload of one cached pass list.
fn pass_list_bytes(list: &[Pass]) -> u64 {
    (std::mem::size_of_val(list) + size_of::<Vec<Pass>>()) as u64
}

/// Approximate heap payload of one stored ephemeris grid (the sample
/// lattice dominates; struct headers are noise).
fn grid_payload_bytes(grid: &EphemerisGrid) -> u64 {
    (grid.len() * size_of::<StateEcef>() + size_of::<EphemerisGrid>()) as u64
}

/// The pass list for `key`, predicting it with `make_predictor` on the
/// first request and serving the shared list afterwards.
///
/// `make_predictor` returning `None` means the pair was proven empty
/// without prediction (the spatial pre-cull, see [`satiot_orbit::cull`])
/// and caches an empty list — bit-identical to what the predictor would
/// have returned, because the cull is conservative.
///
/// The map lock is held only to resolve the entry slot; the prediction
/// itself runs outside it, so concurrent lookups of *different* keys
/// predict in parallel while concurrent lookups of the *same* key block
/// on one computation (`OnceLock` guarantees exactly-once).
pub fn passes_for<F>(key: PassKey, make_predictor: F) -> Arc<Vec<Pass>>
where
    F: FnOnce() -> Option<PassPredictor>,
{
    LOOKUPS.fetch_add(1, Relaxed);
    let (passes, computed, len) = cache().get_or_compute(key, || {
        COMPUTES.fetch_add(1, Relaxed);
        CACHE_MISSES.inc();
        let (start, end) = key.range();
        match make_predictor() {
            Some(predictor) => predictor.passes(start, end),
            None => Vec::new(),
        }
    });
    CACHE_ENTRIES.set(len as i64);
    if !computed {
        CACHE_HITS.inc();
    }
    passes
}

/// A snapshot of the cache's proof-of-work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total [`passes_for`] calls.
    pub lookups: u64,
    /// Lookups that ran a prediction. With no eviction budget set (the
    /// default), `computes == entries` proves every cached pass list
    /// was predicted exactly once this process. Under a budget, evicted
    /// keys recompute on their next lookup; the invariant loosens to
    /// `computes ≤ entries + evictions` (an evicted key not looked up
    /// again leaves a gap, one looked up again closes it).
    pub computes: u64,
    /// Distinct keys currently cached.
    pub entries: usize,
    /// Approximate payload bytes currently held (pass structs only;
    /// map/slot overhead excluded).
    pub approx_bytes: u64,
    /// Pass lists evicted by [`enforce_cache_budget`] this process.
    pub evictions: u64,
}

impl CacheStats {
    /// Lookups served without predicting.
    pub fn hits(&self) -> u64 {
        self.lookups - self.computes
    }
}

/// Read the cache counters.
pub fn stats() -> CacheStats {
    CacheStats {
        lookups: LOOKUPS.load(Relaxed),
        computes: COMPUTES.load(Relaxed),
        entries: cache().len(),
        approx_bytes: cache().approx_bytes(|l| pass_list_bytes(l)),
        evictions: PASS_EVICTIONS.load(Relaxed),
    }
}

/// Drop every cached pass list *and* every stored ephemeris grid, and
/// zero both sets of counters (benches measuring cold-cache sweeps;
/// long-lived processes rotating TLE epochs).
pub fn clear() {
    cache().clear();
    CACHE_ENTRIES.set(0);
    LOOKUPS.store(0, Relaxed);
    COMPUTES.store(0, Relaxed);
    PASS_EVICTIONS.store(0, Relaxed);
    grid_store().clear();
    GRID_ENTRIES.set(0);
    GRID_LOOKUPS.store(0, Relaxed);
    GRID_COMPUTES.store(0, Relaxed);
    GRID_EVICTIONS.store(0, Relaxed);
}

/// What one [`enforce_cache_budget`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionSweep {
    /// Pass lists dropped from the cache.
    pub pass_lists_evicted: usize,
    /// Ephemeris grids dropped from the store.
    pub grids_evicted: usize,
    /// Approximate payload bytes freed.
    pub bytes_freed: u64,
    /// Approximate payload bytes still held after the pass.
    pub bytes_retained: u64,
}

/// Set (or clear, with `None`) the combined payload budget in bytes for
/// both process-wide stores. The default is no budget: nothing is ever
/// evicted and the exactly-once `computes == entries` invariant holds
/// for the whole process lifetime. With a budget, each
/// [`enforce_cache_budget`] call drops least-recently-used entries —
/// pass lists and grids ranked on one shared recency axis — until the
/// combined approximate payload fits.
pub fn set_cache_budget_bytes(budget: Option<u64>) {
    BUDGET_BYTES.store(budget.unwrap_or(u64::MAX), Relaxed);
}

/// The configured payload budget, if any.
pub fn cache_budget_bytes() -> Option<u64> {
    match BUDGET_BYTES.load(Relaxed) {
        u64::MAX => None,
        b => Some(b),
    }
}

/// Evict least-recently-used entries across *both* stores until their
/// combined approximate payload fits the configured budget. A no-op
/// (and lock-free) when no budget is set.
///
/// Lookups themselves never evict — the hot path stays lock-light and
/// budget-less processes keep exactly-once memoisation. Long-lived
/// drivers call this at their job boundaries (the sweep server does so
/// after every job), so a sweep over disjoint windows is bounded by the
/// budget instead of growing with the number of distinct windows.
pub fn enforce_cache_budget() -> EvictionSweep {
    let Some(budget) = cache_budget_bytes() else {
        return EvictionSweep::default();
    };
    let sweep = enforce_on(cache(), grid_store(), budget);
    if sweep.pass_lists_evicted > 0 {
        PASS_EVICTIONS.fetch_add(sweep.pass_lists_evicted as u64, Relaxed);
        CACHE_EVICTED.add(sweep.pass_lists_evicted as u64);
        CACHE_ENTRIES.set(cache().len() as i64);
    }
    if sweep.grids_evicted > 0 {
        GRID_EVICTIONS.fetch_add(sweep.grids_evicted as u64, Relaxed);
        GRID_EVICTED.add(sweep.grids_evicted as u64);
        GRID_ENTRIES.set(grid_store().len() as i64);
    }
    sweep
}

/// The eviction pass itself, on explicit stores (unit-testable without
/// touching the process-wide caches). Holds both map locks for the
/// whole pass so a concurrent lookup cannot resurrect a key
/// mid-eviction; lookups only ever take one lock briefly and never
/// nest, so the fixed pass→grid acquisition order cannot deadlock.
fn enforce_on(
    passes: &Store<PassKey, Vec<Pass>>,
    grids: &Store<GridKey, EphemerisGrid>,
    budget_bytes: u64,
) -> EvictionSweep {
    enum Victim {
        Pass(PassKey),
        Grid(GridKey),
    }
    let mut pass_map = passes.lock();
    let mut grid_map = grids.lock();
    let mut candidates: Vec<(u64, u64, Victim)> = Vec::new();
    let mut retained: u64 = 0;
    for (k, slot) in pass_map.iter() {
        if let Some(list) = slot.cell.get() {
            let bytes = pass_list_bytes(list);
            retained += bytes;
            candidates.push((slot.last_used.load(Relaxed), bytes, Victim::Pass(*k)));
        }
    }
    for (k, slot) in grid_map.iter() {
        if let Some(grid) = slot.cell.get() {
            let bytes = grid_payload_bytes(grid);
            retained += bytes;
            candidates.push((slot.last_used.load(Relaxed), bytes, Victim::Grid(*k)));
        }
    }
    let mut sweep = EvictionSweep {
        bytes_retained: retained,
        ..EvictionSweep::default()
    };
    if retained <= budget_bytes {
        return sweep;
    }
    // Oldest tick first; ticks are unique (one global fetch_add per
    // lookup), so the order is deterministic.
    candidates.sort_by_key(|(tick, _, _)| *tick);
    for (_, bytes, victim) in candidates {
        if sweep.bytes_retained <= budget_bytes {
            break;
        }
        match victim {
            Victim::Pass(k) => {
                pass_map.remove(&k);
                sweep.pass_lists_evicted += 1;
            }
            Victim::Grid(k) => {
                grid_map.remove(&k);
                sweep.grids_evicted += 1;
            }
        }
        sweep.bytes_freed += bytes;
        sweep.bytes_retained -= bytes;
    }
    sweep
}

/// Identity of one shared ephemeris grid.
///
/// Unlike [`PassKey`], the site and elevation mask are deliberately
/// *absent*: a grid samples the satellite's ECEF trajectory, which does
/// not depend on who is watching. Every observer — eight measurement
/// sites, twelve ground stations, any mask — over the same `(satellite,
/// window)` shares one grid, and that sharing is the whole point of the
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridKey {
    /// Constellation label (interned).
    pub constellation: &'static str,
    /// Satellite id within the constellation.
    pub sat_id: u32,
    /// Scan start (`JulianDate` bits).
    pub start_bits: u64,
    /// Scan end (`JulianDate` bits).
    pub end_bits: u64,
}

impl GridKey {
    /// Build a key from the scan window's natural inputs.
    pub fn new(constellation: &str, sat_id: u32, start: JulianDate, end: JulianDate) -> GridKey {
        GridKey {
            constellation: intern(constellation),
            sat_id,
            start_bits: start.0.to_bits(),
            end_bits: end.0.to_bits(),
        }
    }

    /// The scan window encoded in the key.
    pub fn range(&self) -> (JulianDate, JulianDate) {
        (
            JulianDate(f64::from_bits(self.start_bits)),
            JulianDate(f64::from_bits(self.end_bits)),
        )
    }
}

fn grid_store() -> &'static Store<GridKey, EphemerisGrid> {
    static GRIDS: OnceLock<Store<GridKey, EphemerisGrid>> = OnceLock::new();
    GRIDS.get_or_init(Store::new)
}

/// The ephemeris grid for `key`, building it with `build` on the first
/// request and serving the shared grid afterwards.
///
/// Mirrors [`passes_for`]: the map lock is held only to resolve the
/// entry slot, the build runs outside it, and `OnceLock` guarantees the
/// expensive SGP4 sampling sweep happens exactly once per key even under
/// concurrent access from the sweep pool.
pub fn grid_for<F>(key: GridKey, build: F) -> Arc<EphemerisGrid>
where
    F: FnOnce() -> EphemerisGrid,
{
    GRID_LOOKUPS.fetch_add(1, Relaxed);
    let (grid, computed, len) = grid_store().get_or_compute(key, || {
        GRID_COMPUTES.fetch_add(1, Relaxed);
        GRID_MISSES.inc();
        build()
    });
    GRID_ENTRIES.set(len as i64);
    if !computed {
        GRID_HITS.inc();
    }
    grid
}

/// A snapshot of the grid store's proof-of-work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridStats {
    /// Total [`grid_for`] calls.
    pub lookups: u64,
    /// Lookups that built a grid. `computes == entries` proves every
    /// stored grid was sampled exactly once this process (loosening to
    /// account for `evictions` once a budget is set, as for
    /// [`CacheStats::computes`]).
    pub computes: u64,
    /// Distinct grids currently stored.
    pub entries: usize,
    /// Approximate payload bytes currently held (sample lattices).
    pub approx_bytes: u64,
    /// Grids evicted by [`enforce_cache_budget`] this process.
    pub evictions: u64,
}

impl GridStats {
    /// Lookups served without building.
    pub fn hits(&self) -> u64 {
        self.lookups - self.computes
    }
}

/// Read the grid-store counters.
pub fn grid_stats() -> GridStats {
    GridStats {
        lookups: GRID_LOOKUPS.load(Relaxed),
        computes: GRID_COMPUTES.load(Relaxed),
        entries: grid_store().len(),
        approx_bytes: grid_store().approx_bytes(grid_payload_bytes),
        evictions: GRID_EVICTIONS.load(Relaxed),
    }
}

/// Build the pass predictor every campaign driver uses for one
/// `(satellite, site, window)` triple, honouring the process-wide
/// [`ephemeris::mode`]:
///
/// * `Off` — a plain direct-SGP4 predictor, bit-identical to the
///   pre-ephemeris pipeline (the `SATIOT_EPHEMERIS=0` A/B baseline).
/// * `On` (default) — attaches the shared [`EphemerisGrid`] for the
///   satellite's window from [`grid_for`], so coarse scan, bisection
///   refinement, and culmination search all interpolate instead of
///   re-propagating.
/// * `Validate` — as `On`, but every freshly built grid is probed
///   against direct SGP4 and the process aborts if the accuracy
///   contract is violated (CI's `ephemeris_check` runs in this mode).
///
/// The predictor also carries the process-wide [`visibility::mode`]:
/// with a grid attached, `Scalar`/`On` replace the coarse elevation
/// scan with the bit-identical-pair margin sweeps over the grid's
/// columns (`SATIOT_VISIBILITY`); without a grid (`SATIOT_EPHEMERIS=0`)
/// the sweep has no columns to walk and the legacy scan runs
/// regardless.
///
/// Both the pooled predict phases and the legacy inline path construct
/// their predictors here, which is what keeps the drivers bit-identical:
/// they share not just the algorithm but the very same grid `Arc`s.
///
/// Returns `None` when the process-wide [`cull::mode`] is on and the
/// pair is provably invisible over the window (see
/// [`predictor_with_mode`]) — the pass list is empty by construction.
pub fn sat_predictor(
    constellation: &str,
    sat_id: u32,
    sgp4: &Sgp4,
    site: Geodetic,
    mask_rad: f64,
    start: JulianDate,
    end: JulianDate,
) -> Option<PassPredictor> {
    let key = GridKey::new(constellation, sat_id, start, end);
    predictor_with_mode(
        ephemeris::mode(),
        visibility::mode(),
        cull::mode(),
        key,
        sgp4,
        site,
        mask_rad,
    )
}

/// [`sat_predictor`] with every mode passed explicitly, so campaign
/// drivers can honour `RunOptions::ephemeris` / `RunOptions::visibility`
/// / `RunOptions::culling` overrides (and tests can exercise every
/// branch) without racing on the global mode latches.
///
/// With `culling` on, the pair runs the conservative spatial pre-cull
/// before any grid interpolation: the latitude-band test needs no
/// propagation at all, and the footprint-cone test scans only the
/// shared grid's raw samples. A culled pair returns `None` — its pass
/// list over the key's window is provably empty — and the always-on
/// `orbit.cull.*` proof counters record the decision. With `culling`
/// off no counter moves and every pair gets a predictor, bit-identical
/// to the pre-cull pipeline.
pub fn predictor_with_mode(
    mode: EphemerisMode,
    visibility: VisibilityMode,
    culling: CullingMode,
    key: GridKey,
    sgp4: &Sgp4,
    site: Geodetic,
    mask_rad: f64,
) -> Option<PassPredictor> {
    if culling == CullingMode::On {
        cull::record_considered();
        if cull::never_in_latitude_band(
            site,
            sgp4.inclination_rad(),
            sgp4.apogee_radius_km(),
            mask_rad,
        ) {
            cull::record_lat_band_cull();
            return None;
        }
    }
    let predictor = PassPredictor::new(sgp4.clone(), site, mask_rad).with_visibility(visibility);
    if mode == EphemerisMode::Off {
        if culling == CullingMode::On {
            cull::record_kept();
        }
        return Some(predictor);
    }
    let (start, end) = key.range();
    let grid = grid_for(key, || {
        let grid = EphemerisGrid::build(sgp4, start, end);
        if mode == EphemerisMode::Validate {
            let report = grid.validate(sgp4, 256);
            assert!(
                report.within_contract(),
                "ephemeris accuracy contract violated for {}/{} over {start:?}..{end:?}: {report:?}",
                key.constellation,
                key.sat_id,
            );
        }
        grid
    });
    if culling == CullingMode::On {
        if cull::cone_clears_grid(&grid, site, mask_rad, start, end) {
            cull::record_cone_cull();
            return None;
        }
        cull::record_kept();
    }
    Some(predictor.with_ephemeris(grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_orbit::elements::Elements;
    use satiot_orbit::frames::Geodetic;
    use std::sync::atomic::AtomicUsize;

    fn epoch() -> JulianDate {
        JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0)
    }

    fn make_predictor() -> PassPredictor {
        let sgp4 = Elements::circular(550.0, 97.6, epoch()).to_sgp4().unwrap();
        PassPredictor::new(sgp4, Geodetic::from_degrees(22.32, 114.17, 0.05), 0.0)
    }

    // Keys below use test-only site codes, so they cannot collide with
    // the campaign tests that share this process's global cache.

    #[test]
    fn second_lookup_shares_the_first_list() {
        let key = PassKey::new("TEST_SHARE", "T", 0, epoch(), epoch() + 1.0, 0.0);
        let built = AtomicUsize::new(0);
        let make = || {
            built.fetch_add(1, Relaxed);
            Some(make_predictor())
        };
        let a = passes_for(key, make);
        let b = passes_for(key, make);
        assert_eq!(built.load(Relaxed), 1, "predictor built twice");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_empty());
        // The cached list matches a fresh prediction bit-for-bit.
        let fresh = make_predictor().passes(epoch(), epoch() + 1.0);
        assert_eq!(*a, fresh);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let k1 = PassKey::new("TEST_DISTINCT", "T", 0, epoch(), epoch() + 1.0, 0.0);
        let k2 = PassKey::new("TEST_DISTINCT", "T", 0, epoch(), epoch() + 2.0, 0.0);
        let k3 = PassKey::new("TEST_DISTINCT", "T", 1, epoch(), epoch() + 1.0, 0.0);
        let a = passes_for(k1, || Some(make_predictor()));
        let b = passes_for(k2, || Some(make_predictor()));
        let c = passes_for(k3, || Some(make_predictor()));
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(b.len() >= a.len(), "wider range lost passes");
    }

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern("TEST_INTERN_SITE");
        let b = intern(&String::from("TEST_INTERN_SITE"));
        assert_eq!(a, "TEST_INTERN_SITE");
        assert!(std::ptr::eq(a, b), "same text interned to two pointers");
        // Keys built from borrowed strings equal keys built from literals.
        let owned = String::from("TEST_INTERN_SITE");
        let k1 = PassKey::new(&owned, "T", 0, epoch(), epoch() + 1.0, 0.0);
        let k2 = PassKey::new("TEST_INTERN_SITE", "T", 0, epoch(), epoch() + 1.0, 0.0);
        assert_eq!(k1, k2);
    }

    #[test]
    fn grid_store_builds_exactly_once_per_key() {
        let key = GridKey::new("TEST_GRID_ONCE", 0, epoch(), epoch() + 1.0);
        let built = AtomicUsize::new(0);
        let sgp4 = Elements::circular(550.0, 97.6, epoch()).to_sgp4().unwrap();
        let build = || {
            built.fetch_add(1, Relaxed);
            EphemerisGrid::build(&sgp4, epoch(), epoch() + 1.0)
        };
        let grids: Vec<Arc<EphemerisGrid>> =
            satiot_sim::pool::parallel_map_with(&[(); 16], 8, |_, _| grid_for(key, build));
        assert_eq!(built.load(Relaxed), 1, "racing lookups built twice");
        for g in &grids {
            assert!(Arc::ptr_eq(&grids[0], g));
        }
        assert!(!grids[0].is_empty());
    }

    #[test]
    fn predictor_modes_share_grids_and_match_direct() {
        let start = epoch();
        let end = epoch() + 1.0;
        let sgp4 = Elements::circular(550.0, 97.6, epoch()).to_sgp4().unwrap();
        let site_a = Geodetic::from_degrees(22.32, 114.17, 0.05);
        let site_b = Geodetic::from_degrees(23.13, 113.26, 0.02);
        let key = GridKey::new("TEST_MODES", 0, start, end);

        let off = predictor_with_mode(
            EphemerisMode::Off,
            VisibilityMode::Off,
            CullingMode::Off,
            key,
            &sgp4,
            site_a,
            0.0,
        )
        .expect("culling off never drops a pair");
        assert!(off.ephemeris().is_none(), "Off mode attached a grid");

        // Two observers over the same window share one grid Arc; the
        // Validate branch probes it against direct SGP4 on first build.
        // The gridded predictors run the default margin-sweep scan, so
        // this also pins sweep-vs-direct agreement end to end.
        let on_a = predictor_with_mode(
            EphemerisMode::Validate,
            VisibilityMode::On,
            CullingMode::Off,
            key,
            &sgp4,
            site_a,
            0.0,
        )
        .expect("culling off never drops a pair");
        let on_b = predictor_with_mode(
            EphemerisMode::On,
            VisibilityMode::On,
            CullingMode::Off,
            key,
            &sgp4,
            site_b,
            0.0,
        )
        .expect("culling off never drops a pair");
        let (ga, gb) = (on_a.ephemeris().unwrap(), on_b.ephemeris().unwrap());
        assert!(Arc::ptr_eq(ga, gb), "same window built two grids");

        // Grid-backed pass lists agree with direct prediction within the
        // documented contract; here the discretisation is fine enough
        // that pass counts must match exactly.
        let direct = off.passes(start, end);
        let gridded = on_a.passes(start, end);
        assert_eq!(direct.len(), gridded.len());
        for (d, g) in direct.iter().zip(&gridded) {
            assert!((d.aos.seconds_since(g.aos)).abs() < 0.1);
            assert!((d.los.seconds_since(g.los)).abs() < 0.1);
            assert!((d.max_elevation_rad - g.max_elevation_rad).abs() < 0.01_f64.to_radians());
        }
    }

    #[test]
    fn culling_drops_invisible_pairs_and_keeps_visible_ones() {
        let start = epoch();
        let end = epoch() + 0.5;
        // Low-inclination shell: never visible from a polar site.
        let sgp4 = Elements::circular(550.0, 20.0, epoch()).to_sgp4().unwrap();
        let polar = Geodetic::from_degrees(80.0, 10.0, 0.0);
        let equatorial = Geodetic::from_degrees(0.0, 10.0, 0.0);
        let key = GridKey::new("TEST_CULL", 0, start, end);

        let before = cull::stats();
        let culled = predictor_with_mode(
            EphemerisMode::On,
            VisibilityMode::On,
            CullingMode::On,
            key,
            &sgp4,
            polar,
            0.0,
        );
        assert!(culled.is_none(), "polar pair survived the lat-band cull");
        let kept = predictor_with_mode(
            EphemerisMode::On,
            VisibilityMode::On,
            CullingMode::On,
            key,
            &sgp4,
            equatorial,
            0.0,
        );
        let kept = kept.expect("equatorial pair must be kept");
        let after = cull::stats();
        assert_eq!(after.pairs_considered - before.pairs_considered, 2);
        assert_eq!(after.pairs_culled() - before.pairs_culled(), 1);
        assert_eq!(after.pairs_kept - before.pairs_kept, 1);

        // The kept pair's pass set is bit-identical to the unculled one.
        let unculled = predictor_with_mode(
            EphemerisMode::On,
            VisibilityMode::On,
            CullingMode::Off,
            key,
            &sgp4,
            equatorial,
            0.0,
        )
        .expect("culling off never drops a pair");
        assert_eq!(kept.passes(start, end), unculled.passes(start, end));
        // Culling off moves no counters.
        assert_eq!(cull::stats(), after);
    }

    #[test]
    fn eviction_pass_respects_budget_and_lru_order() {
        // Private stores: the process-wide caches are shared by every
        // campaign test in this binary, so evicting from them here
        // would race their exactly-once assertions.
        let passes: Store<PassKey, Vec<Pass>> = Store::new();
        let grids: Store<GridKey, EphemerisGrid> = Store::new();
        let base = make_predictor().passes(epoch(), epoch() + 1.0);
        assert!(!base.is_empty());
        let list = |n: usize| -> Vec<Pass> { base.iter().cycle().take(n).cloned().collect() };

        let k1 = PassKey::new("TEST_EVICT", "T", 1, epoch(), epoch() + 1.0, 0.0);
        let k2 = PassKey::new("TEST_EVICT", "T", 2, epoch(), epoch() + 1.0, 0.0);
        let k3 = PassKey::new("TEST_EVICT", "T", 3, epoch(), epoch() + 1.0, 0.0);
        let gk = GridKey::new("TEST_EVICT", 1, epoch(), epoch() + 0.2);
        let sgp4 = Elements::circular(550.0, 97.6, epoch()).to_sgp4().unwrap();

        passes.get_or_compute(k1, || list(40));
        passes.get_or_compute(k2, || list(20));
        passes.get_or_compute(k3, || list(10));
        grids.get_or_compute(gk, || EphemerisGrid::build(&sgp4, epoch(), epoch() + 0.2));
        // Touch k1 again: k2 becomes the least recently used entry.
        let (_, recomputed, _) = passes.get_or_compute(k1, || unreachable!("k1 evicted early"));
        assert!(!recomputed);

        let pass_bytes = passes.approx_bytes(|l| pass_list_bytes(l));
        let grid_bytes = grids.approx_bytes(grid_payload_bytes);
        let total = pass_bytes + grid_bytes;
        assert!(pass_bytes > 0 && grid_bytes > 0);

        // Over budget by one byte: exactly the LRU entry (k2) must go.
        let sweep = enforce_on(&passes, &grids, total - 1);
        assert_eq!(sweep.pass_lists_evicted, 1);
        assert_eq!(sweep.grids_evicted, 0);
        assert_eq!(sweep.bytes_freed, pass_list_bytes(&list(20)));
        assert_eq!(sweep.bytes_freed + sweep.bytes_retained, total);
        assert!(sweep.bytes_retained <= total - 1);
        let (_, k2_recomputed, _) = passes.get_or_compute(k2, || list(20));
        let (_, k3_recomputed, _) = passes.get_or_compute(k3, || unreachable!("k3 evicted"));
        assert!(k2_recomputed, "the LRU entry survived the sweep");
        assert!(!k3_recomputed);

        // Budget zero drains both stores completely.
        let sweep = enforce_on(&passes, &grids, 0);
        assert_eq!(sweep.bytes_retained, 0);
        assert_eq!(sweep.grids_evicted, 1);
        assert_eq!(passes.len(), 0);
        assert_eq!(grids.len(), 0);

        // Under budget: a pass is a pure measurement, nothing moves.
        passes.get_or_compute(k1, || list(5));
        let sweep = enforce_on(&passes, &grids, u64::MAX - 1);
        assert_eq!(sweep.pass_lists_evicted, 0);
        assert_eq!(sweep.bytes_retained, pass_list_bytes(&list(5)));
    }

    #[test]
    fn cache_budget_latch_round_trips() {
        // The latch itself is process-global; leave it unset on exit so
        // concurrent campaign tests keep exactly-once memoisation.
        // (Nothing evicts unless `enforce_cache_budget` is called, and
        // this test never calls it with a finite budget installed.)
        assert_eq!(cache_budget_bytes(), None);
        assert_eq!(enforce_cache_budget(), EvictionSweep::default());
        set_cache_budget_bytes(Some(64 << 20));
        assert_eq!(cache_budget_bytes(), Some(64 << 20));
        set_cache_budget_bytes(None);
        assert_eq!(cache_budget_bytes(), None);
    }

    #[test]
    fn concurrent_same_key_computes_exactly_once() {
        let key = PassKey::new("TEST_CONCURRENT", "T", 0, epoch(), epoch() + 1.0, 0.0);
        let built = AtomicUsize::new(0);
        let lists: Vec<Arc<Vec<Pass>>> =
            satiot_sim::pool::parallel_map_with(&[(); 16], 8, |_, _| {
                passes_for(key, || {
                    built.fetch_add(1, Relaxed);
                    Some(make_predictor())
                })
            });
        assert_eq!(built.load(Relaxed), 1, "racing lookups predicted twice");
        for l in &lists {
            assert!(Arc::ptr_eq(&lists[0], l));
        }
    }
}
