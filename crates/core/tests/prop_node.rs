//! Protocol fuzzing: drive the Tianqi-node state machine with random
//! event interleavings and assert its invariants never break.

use proptest::prelude::*;
use satiot_core::node::{BeaconReaction, NodeMachine};

/// A randomly generated protocol stimulus.
#[derive(Debug, Clone)]
enum Stimulus {
    Data,
    Beacon { pass_len_s: f64 },
    Ack { of_current: bool },
    Timeout,
    PassEnd,
    Advance { dt_s: f64 },
}

fn stimulus() -> impl Strategy<Value = Stimulus> {
    prop_oneof![
        2 => Just(Stimulus::Data),
        4 => (30.0_f64..900.0).prop_map(|pass_len_s| Stimulus::Beacon { pass_len_s }),
        3 => any::<bool>().prop_map(|of_current| Stimulus::Ack { of_current }),
        2 => Just(Stimulus::Timeout),
        2 => Just(Stimulus::PassEnd),
        4 => (0.5_f64..600.0).prop_map(|dt_s| Stimulus::Advance { dt_s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the interleaving: packets are conserved, attempt caps
    /// hold, timestamps stay ordered, and residency integrals stay
    /// non-negative and bounded by wall time.
    #[test]
    fn node_invariants_hold_under_fuzzing(
        max_attempts in 1u32..8,
        capacity in 1usize..16,
        script in proptest::collection::vec(stimulus(), 1..200),
    ) {
        let mut node = NodeMachine::with_limits(0, capacity, max_attempts);
        node.listen_plan = vec![(0.0, 1e9)];
        let mut t = 0.0_f64;
        let mut generated = 0u64;
        let mut dropped_by_buffer = 0u64;
        let mut awaiting_seq: Option<u64> = None;

        for s in &script {
            t += 0.25; // Events are strictly ordered in time.
            match s {
                Stimulus::Data => {
                    let before = node.buffer.dropped;
                    node.on_data(generated, t);
                    generated += 1;
                    dropped_by_buffer += node.buffer.dropped - before;
                }
                Stimulus::Beacon { pass_len_s } => {
                    match node.on_beacon(t, t + pass_len_s) {
                        BeaconReaction::Transmit { seq, attempt } => {
                            prop_assert!(attempt <= max_attempts, "attempt {attempt}");
                            prop_assert!(node.awaiting_ack.is_none());
                            node.on_transmit(t, 0.5);
                            awaiting_seq = Some(seq);
                        }
                        BeaconReaction::Idle => {}
                    }
                }
                Stimulus::Ack { of_current } => {
                    let seq = if *of_current {
                        awaiting_seq.unwrap_or(u64::MAX)
                    } else {
                        u64::MAX // A stale/foreign ACK.
                    };
                    node.on_ack(seq, t);
                }
                Stimulus::Timeout => {
                    if let Some((seq, deadline)) = node.awaiting_ack {
                        // Fire the timeout exactly at its deadline.
                        node.on_ack_timeout(seq, deadline.max(t));
                        t = t.max(deadline);
                    }
                }
                Stimulus::PassEnd => node.on_pass_end(t),
                Stimulus::Advance { dt_s } => t += dt_s,
            }
            // The receiver query must be total at any instant.
            let _ = node.is_listening(t);
            let _ = node.in_plan(t);
        }
        node.finalize(t + 1.0);

        // Conservation: everything generated is accounted for exactly once.
        let accounted = node.completed.len() as u64
            + node.gave_up.len() as u64
            + node.buffer.len() as u64
            + dropped_by_buffer;
        prop_assert_eq!(accounted, generated);

        // Attempt caps hold on every terminal packet.
        for p in node.completed.iter().chain(node.gave_up.iter()) {
            prop_assert!(p.attempts <= max_attempts);
            if let Some(ftx) = p.first_tx_s {
                prop_assert!(ftx >= p.generated_s);
            }
        }
        // Only exhausted packets are abandoned.
        for p in &node.gave_up {
            prop_assert_eq!(p.attempts, max_attempts);
        }

        // Residency integrals: non-negative and within wall time.
        prop_assert!(node.engaged_s >= 0.0);
        prop_assert!(node.pending_wait_s() >= 0.0);
        prop_assert!(node.tx_airtime_s >= 0.0);
        prop_assert!(node.engaged_s + node.pending_wait_s() <= t + 2.0);
        prop_assert!(node.plan_rx_s() <= node.pending_wait_s() + 1e-9);
    }
}
