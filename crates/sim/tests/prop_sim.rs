//! Property-based tests for the simulation engine: ordering, stability,
//! and RNG statistics must hold for arbitrary inputs.

use proptest::prelude::*;
use satiot_sim::{Engine, EventQueue, Rng, SimTime};

proptest! {
    /// The queue pops a permutation of its input in non-decreasing time
    /// order, with FIFO stability among equal timestamps.
    #[test]
    fn queue_is_a_stable_sort(times in proptest::collection::vec(0u32..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(*t as f64), (*t, i));
        }
        let mut popped = Vec::new();
        while let Some((time, item)) = q.pop() {
            popped.push((time, item));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1.1 < w[1].1.1, "FIFO violated on ties");
            }
        }
    }

    /// The engine clock never runs backwards, whatever the schedule.
    #[test]
    fn engine_clock_is_monotone(delays in proptest::collection::vec(0.0_f64..100.0, 1..100)) {
        let mut engine: Engine<usize> = Engine::new();
        for (i, d) in delays.iter().enumerate() {
            engine.schedule_in(*d, i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        engine.run_to_exhaustion(|_, now, _| {
            assert!(now >= last);
            last = now;
            seen += 1;
        });
        prop_assert_eq!(seen, delays.len());
    }

    /// Forked streams are reproducible and label-sensitive.
    #[test]
    fn rng_forks_are_stable(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = Rng::from_seed(seed);
        let mut a = root.fork(&label);
        let mut b = root.fork(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = root.fork(&format!("{label}x"));
        // Overwhelmingly unlikely to collide on the next draw.
        prop_assert_ne!(a.next_u64(), c.next_u64());
    }

    /// Uniform draws respect their bounds for arbitrary ranges.
    #[test]
    fn uniform_respects_bounds(seed in any::<u64>(), lo in -1e6_f64..1e6, span in 1e-3_f64..1e6) {
        let mut rng = Rng::from_seed(seed);
        let hi = lo + span;
        for _ in 0..100 {
            let v = rng.uniform(lo, hi);
            prop_assert!((lo..hi).contains(&v), "{v} outside [{lo}, {hi})");
        }
    }

    /// Exponential draws are non-negative with roughly the right mean.
    #[test]
    fn exponential_is_nonnegative(seed in any::<u64>(), mean in 0.1_f64..1e4) {
        let mut rng = Rng::from_seed(seed);
        let n = 2_000;
        let sum: f64 = (0..n).map(|_| {
            let v = rng.exponential(mean);
            assert!(v >= 0.0);
            v
        }).sum();
        let sample_mean = sum / n as f64;
        // 2000 samples of an exponential: mean within ±25 % almost surely.
        prop_assert!((sample_mean / mean - 1.0).abs() < 0.25, "mean {sample_mean} vs {mean}");
    }
}
