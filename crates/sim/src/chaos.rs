//! Seeded fault injection for campaign inputs.
//!
//! The paper's measurement pipeline lives or dies on how it handles
//! degenerate inputs — inverted time ranges, NaN durations, zero-station
//! sites, empty constellations — yet panics in any one code path abort a
//! whole multi-hour sweep. This module is the deterministic half of the
//! robustness harness: a seeded perturbation engine that derives, per
//! scenario index, a reproducible plan of input mutations. The
//! `chaos_smoke` binary (in `satiot-bench`) replays hundreds of such
//! scenarios across the pooled and serial campaign drivers, asserting
//! zero panics and bit-identical degradation accounting.
//!
//! Everything here is a pure function of `(seed, scenario index)`: the
//! engine forks one labelled [`crate::Rng`] stream per scenario, so a
//! failing scenario reproduces from its index alone
//! (`SATIOT_CHAOS_SEED=<seed> chaos_smoke` replays the whole batch).
//!
//! ```
//! use satiot_sim::chaos::ChaosEngine;
//!
//! let engine = ChaosEngine::new(7);
//! let mut a = engine.scenario(3);
//! let mut b = engine.scenario(3);
//! // Same seed + index => identical plans.
//! assert_eq!(a.corrupt_f64(1.5).to_bits(), b.corrupt_f64(1.5).to_bits());
//! assert_eq!(a.applied(), b.applied());
//! ```

use crate::rng::Rng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// Default root seed when none is pinned.
pub const DEFAULT_SEED: u64 = 0xC4A0_5EED;

static PINNED_SEED: AtomicU64 = AtomicU64::new(DEFAULT_SEED);
static SEED_PINNED: AtomicBool = AtomicBool::new(false);

/// Pin the root chaos seed process-wide. Typed campaign options
/// (`satiot_core::RunOptions`) call this from `apply()`, which is how
/// the `SATIOT_CHAOS_SEED` environment knob reaches this module — it
/// never reads the environment itself.
pub fn set_seed(seed: u64) {
    PINNED_SEED.store(seed, Relaxed);
    SEED_PINNED.store(true, Relaxed);
}

/// Root seed for a chaos batch: the pinned seed when [`set_seed`] was
/// called, otherwise [`DEFAULT_SEED`].
pub fn seed() -> u64 {
    if SEED_PINNED.load(Relaxed) {
        PINNED_SEED.load(Relaxed)
    } else {
        DEFAULT_SEED
    }
}

/// The seeded scenario factory.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    root: Rng,
    seed: u64,
}

impl ChaosEngine {
    /// An engine deriving every scenario from `seed`.
    pub fn new(seed: u64) -> ChaosEngine {
        ChaosEngine {
            root: Rng::from_seed(seed),
            seed,
        }
    }

    /// The root seed this engine derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The perturbation plan for scenario `index` (same index, same
    /// plan — forever, on every machine).
    pub fn scenario(&self, index: u64) -> ChaosPlan {
        ChaosPlan {
            rng: self.root.fork_indexed("chaos-scenario", index),
            index,
            applied: Vec::new(),
        }
    }
}

/// One scenario's deterministic stream of input mutations.
///
/// Each `corrupt_*` helper draws from the scenario's private RNG stream,
/// records a label describing the mutation it applied (retrievable via
/// [`ChaosPlan::applied`] for failure reports), and returns the mutated
/// value. Helpers may also return the input unchanged — "no fault" is a
/// valid draw, so scenario batches cover the healthy path too.
#[derive(Debug)]
pub struct ChaosPlan {
    rng: Rng,
    index: u64,
    applied: Vec<&'static str>,
}

impl ChaosPlan {
    /// The scenario index this plan was derived for.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Labels of every mutation applied so far, in draw order.
    pub fn applied(&self) -> &[&'static str] {
        &self.applied
    }

    /// Record a mutation label (helpers call this; scenario drivers may
    /// add their own markers).
    pub fn note(&mut self, label: &'static str) {
        self.applied.push(label);
    }

    /// A Bernoulli draw from the scenario stream.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A uniform index draw in `[0, len)` (`0` when `len == 0`).
    pub fn index_in(&mut self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            self.rng.index(len)
        }
    }

    /// A derived seed for the system under test (campaign seeds vary per
    /// scenario so faults meet different stochastic paths).
    pub fn derived_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Corrupt a general `f64`: NaN, ±∞, sign flip, zero — or leave it
    /// untouched.
    pub fn corrupt_f64(&mut self, v: f64) -> f64 {
        match self.index_in(6) {
            0 => {
                self.note("f64=nan");
                f64::NAN
            }
            1 => {
                self.note("f64=+inf");
                f64::INFINITY
            }
            2 => {
                self.note("f64=-inf");
                f64::NEG_INFINITY
            }
            3 => {
                self.note("f64=negated");
                -v
            }
            4 => {
                self.note("f64=zero");
                0.0
            }
            _ => v,
        }
    }

    /// Corrupt a duration / day-count style quantity. The "huge" arm is
    /// deliberately bounded (not `1e300`) so a degraded-but-running
    /// scenario still terminates quickly.
    pub fn corrupt_duration(&mut self, v: f64) -> f64 {
        match self.index_in(6) {
            0 => {
                self.note("duration=nan");
                f64::NAN
            }
            1 => {
                self.note("duration=zero");
                0.0
            }
            2 => {
                self.note("duration=negative");
                -v.abs().max(1.0)
            }
            3 => {
                self.note("duration=-inf");
                f64::NEG_INFINITY
            }
            4 => {
                self.note("duration=grown");
                v * 3.0
            }
            _ => v,
        }
    }

    /// Corrupt a time range: invert it, collapse it to zero width, or
    /// poison one bound with NaN.
    pub fn corrupt_range(&mut self, range: (f64, f64)) -> (f64, f64) {
        let (a, b) = range;
        match self.index_in(5) {
            0 => {
                self.note("range=inverted");
                (b, a)
            }
            1 => {
                self.note("range=collapsed");
                (a, a)
            }
            2 => {
                self.note("range=nan-start");
                (f64::NAN, b)
            }
            3 => {
                self.note("range=nan-end");
                (a, f64::NAN)
            }
            _ => (a, b),
        }
    }

    /// Corrupt a count (stations, nodes, capacities): zero it, shrink it
    /// to one, or grow it moderately.
    pub fn corrupt_count(&mut self, n: u32) -> u32 {
        match self.index_in(5) {
            0 => {
                self.note("count=zero");
                0
            }
            1 => {
                self.note("count=one");
                1
            }
            2 => {
                self.note("count=grown");
                n.saturating_mul(4).max(4)
            }
            _ => n,
        }
    }

    /// Corrupt an elevation-style angle (radians): push it outside
    /// [−π/2, π/2], poison it, or keep it.
    pub fn corrupt_elevation_rad(&mut self, v: f64) -> f64 {
        match self.index_in(5) {
            0 => {
                self.note("elevation=nan");
                f64::NAN
            }
            1 => {
                self.note("elevation=above-zenith");
                2.0
            }
            2 => {
                self.note("elevation=below-nadir");
                -2.0
            }
            _ => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_index_replays_identically() {
        let engine = ChaosEngine::new(0xDEAD);
        let mut a = engine.scenario(11);
        let mut b = engine.scenario(11);
        for _ in 0..32 {
            assert_eq!(
                a.corrupt_duration(5.0).to_bits(),
                b.corrupt_duration(5.0).to_bits()
            );
            assert_eq!(a.corrupt_count(27), b.corrupt_count(27));
            let (ra, rb) = (a.corrupt_range((0.0, 9.0)), b.corrupt_range((0.0, 9.0)));
            assert_eq!(ra.0.to_bits(), rb.0.to_bits());
            assert_eq!(ra.1.to_bits(), rb.1.to_bits());
        }
        assert_eq!(a.applied(), b.applied());
    }

    #[test]
    fn different_indices_diverge() {
        let engine = ChaosEngine::new(1);
        let draws_for = |idx: u64| {
            let mut plan = engine.scenario(idx);
            (0..16).map(|_| plan.derived_seed()).collect::<Vec<_>>()
        };
        assert_ne!(draws_for(0), draws_for(1));
    }

    #[test]
    fn corruption_menu_reaches_every_arm() {
        // Over many draws every mutation class must appear at least once
        // (the menus are small and uniform).
        let engine = ChaosEngine::new(3);
        let mut plan = engine.scenario(0);
        for _ in 0..256 {
            plan.corrupt_f64(1.0);
            plan.corrupt_duration(1.0);
            plan.corrupt_range((0.0, 1.0));
            plan.corrupt_count(8);
            plan.corrupt_elevation_rad(0.1);
        }
        let seen = plan.applied();
        for label in [
            "f64=nan",
            "duration=negative",
            "range=inverted",
            "count=zero",
            "elevation=above-zenith",
        ] {
            assert!(seen.contains(&label), "never drew {label}");
        }
    }

    #[test]
    fn seed_latch_defaults_then_pins() {
        // Before anything pins it, the default applies.
        if !SEED_PINNED.load(Relaxed) {
            assert_eq!(seed(), DEFAULT_SEED);
        }
        set_seed(0xBEEF);
        assert_eq!(seed(), 0xBEEF);
        set_seed(DEFAULT_SEED);
        assert_eq!(seed(), DEFAULT_SEED);
    }

    #[test]
    fn zero_len_index_is_safe() {
        let engine = ChaosEngine::new(9);
        let mut plan = engine.scenario(0);
        assert_eq!(plan.index_in(0), 0);
        assert_eq!(plan.index(), 0);
    }
}
