//! Deterministic random-number generation with labelled streams.
//!
//! Every stochastic decision in a campaign draws from an [`Rng`] that is
//! derived — via a stable label hash — from one campaign seed. Re-running
//! with the same seed replays bit-identical traces, and adding a new
//! consumer with its own label does not perturb existing streams.
//!
//! The generator is xoshiro256\*\* (public domain, Blackman & Vigna),
//! seeded through SplitMix64, both implemented here so determinism does not
//! hinge on an external crate's version.

/// SplitMix64 step — used for seeding and label mixing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string — stable label hashing for stream forking.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A deterministic PRNG (xoshiro256\*\*) with distribution samplers.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal deviate from Box-Muller.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Seed a generator. Equal seeds yield equal sequences.
    pub fn from_seed(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// The current xoshiro256\*\* state words. Checkpointing code
    /// records this to prove a resumed stream sits at the same position
    /// as the uninterrupted one; equal states imply equal futures
    /// (modulo the Box-Muller spare, which campaign drivers never carry
    /// across a checkpoint boundary).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Derive an independent stream for `label`. Forking is a pure
    /// function of `(parent seed material, label)` — it does not advance
    /// this generator, so adding forks never disturbs existing draws.
    pub fn fork(&self, label: &str) -> Rng {
        let mixed = self.s[0] ^ self.s[2].rotate_left(17) ^ fnv1a(label.as_bytes());
        Rng::from_seed(mixed)
    }

    /// Derive an independent stream for `(label, index)` — convenient for
    /// per-entity streams (satellite #7, node #2, …).
    pub fn fork_indexed(&self, label: &str, index: u64) -> Rng {
        let mixed = self.s[0]
            ^ self.s[2].rotate_left(17)
            ^ fnv1a(label.as_bytes())
            ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        Rng::from_seed(mixed)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. `n` must be > 0.
    pub fn uniform_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform index in `[0, len)` for slice access.
    pub fn index(&mut self, len: usize) -> usize {
        self.uniform_u64(len as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal deviate (Box-Muller, cached pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 ∈ (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = core::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential deviate with the given mean (inverse-CDF).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Amplitude `|X|` of a Rician fading process with K-factor `k_linear`
    /// (ratio of specular to scattered power) and total mean power
    /// `omega` — sampled as the magnitude of a complex Gaussian with a
    /// deterministic offset. Returns the *power gain* (amplitude²/omega
    /// normalised so its expectation is 1.0).
    pub fn rician_power_gain(&mut self, k_linear: f64) -> f64 {
        // Specular component amplitude² = k/(k+1), scatter power = 1/(k+1).
        let nu = (k_linear / (k_linear + 1.0)).sqrt();
        let sigma = (1.0 / (2.0 * (k_linear + 1.0))).sqrt();
        let x = nu + sigma * self.standard_normal();
        let y = sigma * self.standard_normal();
        x * x + y * y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::from_seed(42);
        let mut b = Rng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = Rng::from_seed(7);
        let mut f1 = root.fork("channel");
        let mut f2 = root.fork("protocol");
        let mut f1_again = root.fork("channel");
        assert_ne!(f1.next_u64(), f2.next_u64());
        // Re-forking yields the same stream (f1 already consumed one draw).
        let _ = f1_again.next_u64();
        assert_eq!(f1.next_u64(), f1_again.next_u64());
    }

    #[test]
    fn indexed_forks_differ_by_index() {
        let root = Rng::from_seed(7);
        let mut a = root.fork_indexed("sat", 0);
        let mut b = root.fork_indexed("sat", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = Rng::from_seed(3);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            let u = rng.uniform(-3.0, 5.5);
            assert!((-3.0..5.5).contains(&u));
            let n = rng.uniform_u64(7);
            assert!(n < 7);
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = Rng::from_seed(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::from_seed(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::from_seed(17);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((0..1000).all(|_| rng.exponential(3.0) >= 0.0));
    }

    #[test]
    fn rician_power_gain_expectation_is_one() {
        for k in [0.5, 2.0, 8.0] {
            let mut rng = Rng::from_seed(19);
            let n = 200_000;
            let mean: f64 = (0..n).map(|_| rng.rician_power_gain(k)).sum::<f64>() / n as f64;
            assert!((mean - 1.0).abs() < 0.02, "k={k}: mean {mean}");
        }
    }

    #[test]
    fn high_k_rician_concentrates_near_one() {
        let mut rng = Rng::from_seed(23);
        let n = 50_000;
        let deep_fades = (0..n)
            .filter(|_| rng.rician_power_gain(100.0) < 0.5)
            .count();
        // With K = 100 the specular path dominates: −3 dB fades are
        // ~4σ events (analytically ≈ 2e-5 probability).
        assert!(deep_fades < n / 500, "{deep_fades} deep fades");
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = Rng::from_seed(29);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count() as f64 / n as f64;
        assert!((hits - 0.3).abs() < 0.01, "rate {hits}");
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn state_pins_the_stream_position() {
        let mut a = Rng::from_seed(97);
        let mut b = Rng::from_seed(97);
        assert_eq!(a.state(), b.state());
        for _ in 0..17 {
            a.next_u64();
            b.next_u64();
        }
        // Equal states ⇒ equal futures: the checkpoint contract.
        assert_eq!(a.state(), b.state());
        assert_eq!(a.next_u64(), b.next_u64());
        // Reading the state does not advance the stream.
        let before = a.state();
        let _ = a.state();
        assert_eq!(a.state(), before);
    }

    #[test]
    fn index_covers_all_slots() {
        let mut rng = Rng::from_seed(31);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
