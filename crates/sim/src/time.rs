//! Simulation clock.

use core::cmp::Ordering;
use core::ops::{Add, AddAssign, Sub};

/// A point on the simulation timeline, in seconds from the simulation
/// origin.
///
/// Stored as `f64` (sub-microsecond precision over multi-month campaigns)
/// with **total ordering** so it can key a binary heap: `NaN` is
/// considered greater than everything, but library code never produces it.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time guaranteed to be after every event (used as a "run to
    /// exhaustion" horizon).
    pub const FAR_FUTURE: SimTime = SimTime(f64::MAX);

    /// From seconds since the origin.
    #[inline]
    pub const fn from_secs(secs: f64) -> SimTime {
        SimTime(secs)
    }

    /// From minutes since the origin.
    #[inline]
    pub fn from_mins(mins: f64) -> SimTime {
        SimTime(mins * 60.0)
    }

    /// From hours since the origin.
    #[inline]
    pub fn from_hours(hours: f64) -> SimTime {
        SimTime(hours * 3_600.0)
    }

    /// From days since the origin.
    #[inline]
    pub fn from_days(days: f64) -> SimTime {
        SimTime(days * 86_400.0)
    }

    /// Seconds since the origin.
    #[inline]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Minutes since the origin.
    #[inline]
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Hours since the origin.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / 3_600.0
    }

    /// Days since the origin.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }
}

impl PartialEq for SimTime {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    /// Shift by seconds.
    #[inline]
    fn add(self, secs: f64) -> SimTime {
        SimTime(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, secs: f64) {
        self.0 += secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    /// Difference in seconds.
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        let t = SimTime::from_days(2.0);
        assert_eq!(t.as_hours(), 48.0);
        assert_eq!(t.as_mins(), 2880.0);
        assert_eq!(t.as_secs(), 172_800.0);
        assert_eq!(SimTime::from_mins(1.5).as_secs(), 90.0);
        assert_eq!(SimTime::from_hours(0.5).as_mins(), 30.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert!(a <= a);
        assert_eq!(a, SimTime::from_secs(1.0));
        assert!(SimTime::ZERO < SimTime::FAR_FUTURE);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + 5.0;
        assert_eq!(t.as_secs(), 15.0);
        let mut m = t;
        m += 5.0;
        assert_eq!(m - t, 5.0);
    }
}
