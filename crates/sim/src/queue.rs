//! A stable priority queue of timestamped events.
//!
//! Events that share a timestamp pop in insertion order (FIFO), which keeps
//! runs reproducible: a `BinaryHeap` alone would break ties arbitrarily.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of `(SimTime, E)` with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 'c');
        q.push(SimTime::from_secs(1.0), 'a');
        q.push(SimTime::from_secs(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), "late");
        q.push(SimTime::from_secs(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5.0), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2.0), ());
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        q.clear();
        assert!(q.is_empty());
    }
}
