//! # satiot-sim
//!
//! A small, deterministic discrete-event simulation engine.
//!
//! Design notes (per the repo's networking guides): the workload is
//! CPU-bound — millions of cheap events, zero IO — so the engine is
//! synchronous and single-threaded by construction (an async runtime would
//! add overhead and nondeterminism for no benefit; campaign-level
//! parallelism shards *independent* simulations across threads instead).
//! There is no hidden global state: the clock lives in the engine, and all
//! randomness flows from named, seedable streams.
//!
//! * [`time`] — simulation clock ([`SimTime`], seconds as `f64` with total
//!   ordering).
//! * [`rng`] — deterministic PRNG ([`rng::Rng`], xoshiro256\*\* seeded via
//!   SplitMix64) with labelled sub-stream forking, plus the distribution
//!   samplers the channel models need (normal, exponential, Rician).
//! * [`queue`] — a stable event queue: ties in time break by insertion
//!   order, so identical runs replay identically.
//! * [`engine`] — the event loop: schedule, step, run-until.
//! * [`pool`] — the campaign-level sweep pool: an order-preserving
//!   work queue over scoped threads that shards independent tasks
//!   (pass predictions, site simulations) across every core.
//! * [`chaos`] — seeded fault injection: deterministic perturbation
//!   plans (`SATIOT_CHAOS_SEED`) that mutate campaign inputs so the
//!   `chaos_smoke` harness can assert the pipeline degrades gracefully
//!   instead of panicking.
//!
//! ## Example
//!
//! ```
//! use satiot_sim::{engine::Engine, time::SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine = Engine::new();
//! engine.schedule_in(1.0, Ev::Ping(0));
//! let mut seen = Vec::new();
//! engine.run_until(SimTime::from_secs(10.0), |eng, _now, ev| {
//!     let Ev::Ping(n) = ev;
//!     seen.push(n);
//!     if n < 3 {
//!         eng.schedule_in(2.0, Ev::Ping(n + 1));
//!     }
//! });
//! assert_eq!(seen, vec![0, 1, 2, 3]);
//! assert_eq!(engine.now().as_secs(), 7.0);
//! ```

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod chaos;
pub mod engine;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod time;

pub use engine::Engine;
pub use queue::EventQueue;
pub use rng::Rng;
pub use time::SimTime;
