//! A std-only parallel sweep pool.
//!
//! Campaign-level parallelism used to shard work one-thread-per-site,
//! which caps the usable cores at the site count and leaves threads idle
//! behind the slowest site. This module replaces that with a shared
//! work queue: tasks are claimed dynamically off an [`AtomicUsize`]
//! cursor by `std::thread::scope` workers, so many small tasks
//! (e.g. one *(site × satellite)* pass prediction each) balance across
//! every core regardless of how uneven their durations are.
//!
//! Results come back in input order, so callers that merge sequentially
//! (and campaigns that must stay bit-for-bit deterministic) see exactly
//! the ordering a serial loop would produce — only wall-clock changes.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be pinned with [`set_thread_count`] (values `>= 1`; `1`
//! forces a serial in-place run). Campaign entry points wire the
//! `SATIOT_THREADS` environment variable through here via
//! `satiot_core::RunOptions::from_env().apply()` — this module itself
//! never reads the environment.
//!
//! ```
//! use satiot_sim::pool;
//!
//! let squares = pool::parallel_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use satiot_obs::metrics::{Counter, Gauge, Histogram, TIMER_BOUNDS_S};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::{Duration, Instant};

/// Tasks executed across all pool invocations (metrics).
static TASKS_EXECUTED: Counter = Counter::new("sim.pool.tasks_executed");
/// Workers spawned across all pool invocations (metrics).
static WORKERS_SPAWNED: Counter = Counter::new("sim.pool.workers_spawned");
/// Worker count of the most recent pool invocation (metrics).
static WORKERS: Gauge = Gauge::new("sim.pool.workers");
/// Per-task execution time (metrics).
static TASK_S: Histogram = Histogram::new("sim.pool.task_s", TIMER_BOUNDS_S);
/// Per-worker idle time: wall-clock inside the scope minus time spent
/// executing tasks — queue-drained tail waiting (metrics).
static WORKER_IDLE_S: Histogram = Histogram::new("sim.pool.worker_idle_s", TIMER_BOUNDS_S);

/// Pinned worker count; `0` means "not pinned, use the machine".
static PINNED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pin the pool's worker count process-wide (`Some(n)` with `n >= 1`),
/// or restore the machine default with `None`. Typed campaign options
/// (`satiot_core::RunOptions`) call this from `apply()`.
pub fn set_thread_count(threads: Option<usize>) {
    PINNED_THREADS.store(threads.unwrap_or(0), Relaxed);
}

/// The pool's worker count: the value pinned via [`set_thread_count`]
/// when set, otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    match PINNED_THREADS.load(Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Map `f` over `items` on the shared work queue with [`thread_count`]
/// workers, returning results in input order. `f` receives the item's
/// index alongside the item.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(items, thread_count(), f)
}

/// [`parallel_map`] with an explicit worker count (benches pin it to
/// compare sharding strategies; `threads <= 1` runs serially in place).
pub fn parallel_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        TASKS_EXECUTED.add(items.len() as u64);
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let workers = threads.min(items.len());
    WORKERS.set(workers as i64);
    WORKERS_SPAWNED.add(workers as u64);

    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let born = Instant::now();
                    let mut busy = Duration::ZERO;
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let t0 = Instant::now();
                        local.push((i, f(i, &items[i])));
                        let dt = t0.elapsed();
                        busy += dt;
                        TASKS_EXECUTED.inc();
                        TASK_S.record(dt.as_secs_f64());
                    }
                    WORKER_IDLE_S.record(born.elapsed().saturating_sub(busy).as_secs_f64());
                    local
                })
            })
            .collect();
        for h in handles {
            buckets.push(h.join().expect("pool worker panicked"));
        }
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("work queue claimed every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map_with(&items, 8, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let serial = parallel_map_with(&items, 1, |_, &x| {
            x.wrapping_mul(0x9E37_79B9).rotate_left(7)
        });
        let parallel = parallel_map_with(&items, 6, |_, &x| {
            x.wrapping_mul(0x9E37_79B9).rotate_left(7)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let runs: Vec<AtomicU64> = (0..40).map(|_| AtomicU64::new(0)).collect();
        parallel_map_with(&runs, 4, |_, cell| cell.fetch_add(1, Relaxed));
        for cell in &runs {
            assert_eq!(cell.load(Relaxed), 1);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn pinned_thread_count_round_trips() {
        set_thread_count(Some(3));
        assert_eq!(thread_count(), 3);
        set_thread_count(None);
        assert!(thread_count() >= 1);
    }
}
