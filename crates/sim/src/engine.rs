//! The event loop: a clock plus an event queue.

use crate::queue::EventQueue;
use crate::time::SimTime;
use satiot_obs::metrics::{Counter, Gauge};

/// Events processed across every engine instance (metrics).
static EVENTS_PROCESSED: Counter = Counter::new("sim.engine.events_processed");
/// Queue depth observed at each step; `.high_water` tracks the peak
/// (metrics).
static QUEUE_DEPTH: Gauge = Gauge::new("sim.engine.queue_depth");

/// A discrete-event engine over event type `E`.
///
/// The engine owns the clock; handlers receive `&mut Engine` so they can
/// schedule follow-up events, exactly like a smoltcp-style poll loop where
/// all state transitions happen inside the handler.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at `SimTime::ZERO`.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics in debug builds; in release the event fires
    /// immediately (at the current time) to keep the clock monotonic.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {} < {}",
            at.as_secs(),
            self.now.as_secs()
        );
        let at = if at < self.now { self.now } else { at };
        self.queue.push(at, event);
    }

    /// Schedule `event` after `delay_secs` seconds.
    pub fn schedule_in(&mut self, delay_secs: f64, event: E) {
        let at = self.now + delay_secs.max(0.0);
        self.queue.push(at, event);
    }

    /// Pop and return the next event, advancing the clock to it.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        self.now = t;
        self.processed += 1;
        EVENTS_PROCESSED.inc();
        QUEUE_DEPTH.set(self.queue.len() as i64);
        Some((t, e))
    }

    /// Run until the queue drains or the next event would be after `end`.
    ///
    /// Events at exactly `end` are processed. On return, `now` is the time
    /// of the last processed event (or unchanged if none fired); events
    /// after `end` remain queued.
    pub fn run_until<F>(&mut self, end: SimTime, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            // Unwrap is safe: peek just saw an event, and only we pop.
            let (now, event) = self.step().expect("queue changed under us");
            handler(self, now, event);
        }
    }

    /// Run until the queue is exhausted.
    pub fn run_to_exhaustion<F>(&mut self, handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        self.run_until(SimTime::FAR_FUTURE, handler);
    }

    /// Drop all pending events (e.g. when tearing down a scenario early).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(5.0), Ev::Tick(1));
        eng.schedule_at(SimTime::from_secs(2.0), Ev::Tick(0));
        let (t, e) = eng.step().unwrap();
        assert_eq!(t.as_secs(), 2.0);
        assert_eq!(e, Ev::Tick(0));
        assert_eq!(eng.now().as_secs(), 2.0);
        eng.step().unwrap();
        assert_eq!(eng.now().as_secs(), 5.0);
        assert_eq!(eng.events_processed(), 2);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut eng: Engine<Ev> = Engine::new();
        for i in 0..10 {
            eng.schedule_at(SimTime::from_secs(i as f64), Ev::Tick(i));
        }
        let mut seen = Vec::new();
        eng.run_until(SimTime::from_secs(4.0), |_, _, e| {
            if let Ev::Tick(i) = e {
                seen.push(i);
            }
        });
        // Events at t = 0..=4 fire (inclusive horizon); 5..=9 stay queued.
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(eng.pending(), 5);
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_in(1.0, Ev::Tick(0));
        let mut count = 0;
        eng.run_to_exhaustion(|eng, _, e| {
            if let Ev::Tick(n) = e {
                count += 1;
                if n < 4 {
                    eng.schedule_in(1.0, Ev::Tick(n + 1));
                } else {
                    eng.schedule_in(0.5, Ev::Stop);
                }
            }
        });
        assert_eq!(count, 5);
        assert_eq!(eng.now().as_secs(), 5.5);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(10.0), Ev::Tick(0));
        eng.step().unwrap();
        eng.schedule_in(2.5, Ev::Tick(1));
        let (t, _) = eng.step().unwrap();
        assert_eq!(t.as_secs(), 12.5);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..50 {
            eng.schedule_at(SimTime::from_secs(1.0), i);
        }
        let mut seen = Vec::new();
        eng.run_to_exhaustion(|_, _, e| seen.push(e));
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clear_drops_pending() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_in(1.0, 1);
        eng.schedule_in(2.0, 2);
        eng.clear();
        assert!(eng.step().is_none());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled event in the past")]
    fn past_scheduling_panics_in_debug() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime::from_secs(10.0), 1);
        eng.step().unwrap();
        eng.schedule_at(SimTime::from_secs(5.0), 2);
    }
}
