//! The versioned scenario DSL: one typed, validating front door for
//! campaign configuration.
//!
//! A [`ScenarioSpec`] describes everything a campaign binary needs —
//! constellations (named Table-3 catalogs *or* inline Walker stacks),
//! sites (named Table-1 codes *or* inline geodetic sites, optionally
//! carrying a [`MobilityTrack`]), node populations, the traffic model,
//! a weather override, scripted outage windows, and the terrestrial
//! baseline — as a JSON file in the hand-rolled subset grammar of
//! [`crate::json`] (no serde in the build environment; unknown keys are
//! rejected so typos fail loudly).
//!
//! [`ScenarioSpec::build`] resolves the spec against the catalogs into
//! a [`ResolvedScenario`], which `satiot-core` and `satiot-terrestrial`
//! consume as the one constructor for `PassiveConfig` /
//! `ActiveConfig` / `TerrestrialConfig` inputs.
//!
//! ## Fingerprints
//!
//! [`ScenarioSpec::fingerprint`] is an FNV-64 hash over the spec's
//! *canonical serialisation* ([`ScenarioSpec::to_json`]) — the same
//! hash family the sweep server uses for job checkpoints. Re-parsing
//! and re-emitting a file erases formatting differences, so two specs
//! fingerprint equal iff they are field-for-field, bit-for-bit equal.
//! The committed paper scenarios pin their fingerprints in regression
//! tests: editing a `.scenario.json` in a way that changes results
//! also changes the fingerprint and fails the pin, and sweep-server
//! checkpoints keyed on a scenario fingerprint can never silently
//! resume against a different scenario.

use crate::constellations::{all_constellations, constellation_suggestion, ConstellationSpec};
use crate::json::{escape_json, JsonError, JsonParser, JsonValue};
use crate::mobility::{MobilityTrack, Waypoint};
use crate::sites::{measurement_sites, site_code_suggestion, Climate, Site};
use crate::walker::{intern_name, WalkerConstellation, WalkerParseError};

use core::fmt;
use core::fmt::Write as _;

/// The spec version this build reads and writes.
pub const SPEC_VERSION: u32 = 1;

/// Largest integer a JSON number can carry exactly (2^53).
const MAX_JSON_INT: u64 = 9_007_199_254_740_992;

/// Typed error from scenario parsing, validation, or resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// Malformed JSON, a wrong type, an unknown key, or a missing
    /// required field. The payload says which and where.
    Parse(String),
    /// The file's `version` is not one this build understands.
    UnsupportedVersion {
        /// Version stated by the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A field value fails validation.
    InvalidValue {
        /// Dotted path of the offending field.
        field: String,
        /// What the value must satisfy.
        requirement: String,
    },
    /// A named site or constellation is not in the catalog (or is
    /// selected twice). Carries the closest catalog name, if any is
    /// plausibly what the author meant.
    UnknownName {
        /// The offending field.
        field: &'static str,
        /// The offending name.
        name: String,
        /// Closest catalog entry, for "did you mean" messages.
        suggestion: Option<&'static str>,
    },
    /// Reading the scenario file failed.
    Io {
        /// Path handed to [`ScenarioSpec::from_file`].
        path: String,
        /// The OS error text.
        message: String,
    },
}

impl ScenarioError {
    pub(crate) fn invalid(field: &str, requirement: &str) -> ScenarioError {
        ScenarioError::InvalidValue {
            field: field.to_string(),
            requirement: requirement.to_string(),
        }
    }

    fn missing(context: &str, key: &str) -> ScenarioError {
        ScenarioError::Parse(format!("{context} missing {key:?}"))
    }

    fn unknown_key(context: &str, key: &str) -> ScenarioError {
        ScenarioError::Parse(format!("unknown {context} key {key:?}"))
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(msg) => write!(f, "scenario: {msg}"),
            ScenarioError::UnsupportedVersion { found, supported } => write!(
                f,
                "scenario version {found} is not supported (this build reads version {supported})"
            ),
            ScenarioError::InvalidValue { field, requirement } => {
                write!(f, "scenario field `{field}`: {requirement}")
            }
            ScenarioError::UnknownName {
                field,
                name,
                suggestion,
            } => {
                write!(f, "scenario field `{field}`: unknown name {name:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                Ok(())
            }
            ScenarioError::Io { path, message } => {
                write!(f, "scenario file {path:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<JsonError> for ScenarioError {
    fn from(e: JsonError) -> Self {
        ScenarioError::Parse(e.0)
    }
}

impl From<WalkerParseError> for ScenarioError {
    fn from(e: WalkerParseError) -> Self {
        ScenarioError::Parse(format!("walker: {}", e.0))
    }
}

/// Station-assignment policy, as scenario files spell it. Mirrors
/// `satiot_core::SchedulerKind` without depending on core (the
/// dependency points the other way); core converts on build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerSpec {
    /// The paper's customised predictive scheduler.
    Predictive,
    /// Vanilla TinyGS rotation with the given dwell, seconds.
    Vanilla {
        /// Seconds per rotation slot.
        dwell_s: f64,
    },
}

/// A constellation selection: a Table-3 catalog by label, or an inline
/// Walker stack.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstellationRef {
    /// A published catalog (`"Tianqi"` …), matched case-insensitively.
    Named(String),
    /// An inline Walker-delta stack with its transmit power.
    Inline {
        /// The Walker shell stack.
        walker: WalkerConstellation,
        /// Satellite transmit power, dBm.
        tx_power_dbm: f64,
    },
}

/// A site selection: a Table-1 code, or an inline geodetic site.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteRef {
    /// A measurement-site code (`"HK"` …), matched case-insensitively.
    Named(String),
    /// An inline site definition.
    Inline(SiteSpec),
}

/// An inline site: geodetic position, station count, climate, and an
/// optional mobility track.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Short site code (used in traces and pass records).
    pub code: String,
    /// Human-readable name.
    pub name: String,
    /// Latitude, degrees north.
    pub lat_deg: f64,
    /// Longitude, degrees east.
    pub lon_deg: f64,
    /// Altitude, km.
    pub alt_km: f64,
    /// Ground stations deployed at the site.
    pub stations: u32,
    /// Deployment start, days after the campaign epoch.
    pub start_day: f64,
    /// Climate class.
    pub climate: Climate,
    /// Optional waypoint mobility track (seconds relative to the
    /// site's start).
    pub track: Option<MobilityTrack>,
}

/// The sensor traffic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Sensor payload size, bytes.
    pub payload_bytes: u32,
    /// Sensor period, seconds.
    pub period_s: f64,
}

/// One scripted outage window: the terrestrial baseline is down during
/// `[start_s, end_s)` (seconds since campaign start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    /// Outage start, seconds since campaign start.
    pub start_s: f64,
    /// Outage end, seconds since campaign start.
    pub end_s: f64,
}

impl OutageWindow {
    /// Whether `t_s` falls inside the window.
    pub fn contains(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s
    }
}

/// The terrestrial (LoRaWAN + LTE backhaul) baseline parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TerrestrialSpec {
    /// Number of LoRaWAN gateways.
    pub gateways: u32,
    /// Node→gateway distances, km (cycled over nodes).
    pub distances_km: Vec<f64>,
    /// Long-run per-gateway uptime fraction, (0, 1].
    pub gateway_uptime: f64,
}

/// A versioned, validating scenario description. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Spec version ([`SPEC_VERSION`]).
    pub version: u32,
    /// Scenario label (checkpoint-codec charset: printable ASCII
    /// without `"` or `\`).
    pub name: String,
    /// Root RNG seed; `None` keeps each workload's default.
    pub seed: Option<u64>,
    /// Cap on simulated days; `None` runs each site's full span.
    pub max_days: Option<f64>,
    /// Station-assignment policy; `None` keeps the workload default.
    pub scheduler: Option<SchedulerSpec>,
    /// Constellation selections; empty selects every Table-3 catalog.
    pub constellations: Vec<ConstellationRef>,
    /// Site selections; empty selects every Table-1 site.
    pub sites: Vec<SiteRef>,
    /// Deployed node population; `None` keeps the workload default.
    pub nodes: Option<u32>,
    /// Sensor traffic model; `None` keeps the workload default.
    pub traffic: Option<TrafficSpec>,
    /// Constant-climate weather override; `None` uses per-site climate.
    pub weather: Option<Climate>,
    /// Scripted terrestrial outage windows, chronological and
    /// non-overlapping.
    pub outages: Vec<OutageWindow>,
    /// Terrestrial baseline parameters; `None` keeps defaults.
    pub terrestrial: Option<TerrestrialSpec>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            version: SPEC_VERSION,
            name: "unnamed".to_string(),
            seed: None,
            max_days: None,
            scheduler: None,
            constellations: Vec::new(),
            sites: Vec::new(),
            nodes: None,
            traffic: None,
            weather: None,
            outages: Vec::new(),
            terrestrial: None,
        }
    }
}

/// One resolved site: the catalog-shaped [`Site`] plus its mobility
/// track, if any.
#[derive(Debug, Clone)]
pub struct ResolvedSite {
    /// The site in the shape every campaign consumes.
    pub site: Site,
    /// Waypoint track for mobile sites.
    pub track: Option<MobilityTrack>,
}

/// A [`ScenarioSpec`] resolved against the catalogs: every name has
/// become data, every inline definition has been validated and
/// interned. This is the input shape `PassiveConfig::from_scenario`
/// and friends consume.
#[derive(Debug, Clone)]
pub struct ResolvedScenario {
    /// Scenario label.
    pub name: String,
    /// Root seed override.
    pub seed: Option<u64>,
    /// Day cap override.
    pub max_days: Option<f64>,
    /// Scheduler override.
    pub scheduler: Option<SchedulerSpec>,
    /// Resolved sites in selection order.
    pub sites: Vec<ResolvedSite>,
    /// Resolved constellations in selection order.
    pub constellations: Vec<ConstellationSpec>,
    /// Node population override.
    pub nodes: Option<u32>,
    /// Traffic model override.
    pub traffic: Option<TrafficSpec>,
    /// Weather override.
    pub weather: Option<Climate>,
    /// Scripted outage windows.
    pub outages: Vec<OutageWindow>,
    /// Terrestrial baseline overrides.
    pub terrestrial: Option<TerrestrialSpec>,
    /// The source spec's fingerprint (checkpoint compatibility key).
    pub fingerprint: u64,
}

impl ResolvedScenario {
    /// The resolved *fixed* sites (the shape static-site campaigns
    /// consume). Sites carrying a mobility track are excluded: a moving
    /// observer must flow through [`MobilityTrack::legs`] and
    /// `passes_over_legs`, never through the site-code-keyed pass cache
    /// a fixed-site campaign shares.
    pub fn static_sites(&self) -> Vec<Site> {
        self.sites
            .iter()
            .filter(|s| s.track.is_none())
            .map(|s| s.site.clone())
            .collect()
    }

    /// Whether any resolved site carries a mobility track.
    pub fn has_mobile_sites(&self) -> bool {
        self.sites.iter().any(|s| s.track.is_some())
    }
}

impl ScenarioSpec {
    // -----------------------------------------------------------------
    // Validation.

    /// Validate every field of the spec (called by [`Self::from_json`]
    /// and [`Self::build`]).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.version != SPEC_VERSION {
            return Err(ScenarioError::UnsupportedVersion {
                found: self.version,
                supported: SPEC_VERSION,
            });
        }
        // The name lands in sweep checkpoints; hold it to the same
        // charset the sweep codec holds job tags to.
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| (c.is_ascii_graphic() || c == ' ') && c != '"' && c != '\\')
        {
            return Err(ScenarioError::invalid(
                "name",
                "must be non-empty printable ASCII without quotes or backslashes",
            ));
        }
        if let Some(seed) = self.seed {
            if seed >= MAX_JSON_INT {
                return Err(ScenarioError::invalid("seed", "must be < 2^53"));
            }
        }
        if let Some(days) = self.max_days {
            if !(days.is_finite() && days > 0.0) {
                return Err(ScenarioError::invalid("max_days", "must be finite and > 0"));
            }
        }
        if let Some(SchedulerSpec::Vanilla { dwell_s }) = self.scheduler {
            if !(dwell_s.is_finite() && dwell_s > 0.0) {
                return Err(ScenarioError::invalid(
                    "scheduler.vanilla_dwell_s",
                    "must be finite and > 0",
                ));
            }
        }
        for (i, c) in self.constellations.iter().enumerate() {
            if let ConstellationRef::Inline {
                walker,
                tx_power_dbm,
            } = c
            {
                walker.validate()?;
                if !tx_power_dbm.is_finite() {
                    return Err(ScenarioError::invalid(
                        &format!("constellations[{i}].tx_power_dbm"),
                        "must be finite",
                    ));
                }
            }
        }
        for (i, s) in self.sites.iter().enumerate() {
            if let SiteRef::Inline(spec) = s {
                spec.validate(i)?;
            }
        }
        if let Some(nodes) = self.nodes {
            if nodes == 0 {
                return Err(ScenarioError::invalid("nodes", "must be >= 1"));
            }
        }
        if let Some(t) = &self.traffic {
            if t.payload_bytes == 0 {
                return Err(ScenarioError::invalid(
                    "traffic.payload_bytes",
                    "must be >= 1",
                ));
            }
            if !(t.period_s.is_finite() && t.period_s > 0.0) {
                return Err(ScenarioError::invalid(
                    "traffic.period_s",
                    "must be finite and > 0",
                ));
            }
        }
        for (i, w) in self.outages.iter().enumerate() {
            if !(w.start_s.is_finite() && w.end_s.is_finite()) {
                return Err(ScenarioError::invalid(
                    &format!("outages[{i}]"),
                    "bounds must be finite",
                ));
            }
            if w.start_s < 0.0 {
                return Err(ScenarioError::invalid(
                    &format!("outages[{i}].start_s"),
                    "must be >= 0",
                ));
            }
            if w.end_s <= w.start_s {
                return Err(ScenarioError::invalid(
                    &format!("outages[{i}].end_s"),
                    "must be > start_s",
                ));
            }
        }
        for (i, pair) in self.outages.windows(2).enumerate() {
            if pair[1].start_s < pair[0].end_s {
                return Err(ScenarioError::invalid(
                    &format!("outages[{}]", i + 1),
                    "windows must be chronological and non-overlapping",
                ));
            }
        }
        if let Some(t) = &self.terrestrial {
            if t.gateways == 0 {
                return Err(ScenarioError::invalid(
                    "terrestrial.gateways",
                    "must be >= 1",
                ));
            }
            if t.distances_km.is_empty() {
                return Err(ScenarioError::invalid(
                    "terrestrial.distances_km",
                    "must list at least one distance",
                ));
            }
            for (i, d) in t.distances_km.iter().enumerate() {
                if !(d.is_finite() && *d > 0.0) {
                    return Err(ScenarioError::invalid(
                        &format!("terrestrial.distances_km[{i}]"),
                        "must be finite and > 0",
                    ));
                }
            }
            if !(t.gateway_uptime.is_finite() && t.gateway_uptime > 0.0 && t.gateway_uptime <= 1.0)
            {
                return Err(ScenarioError::invalid(
                    "terrestrial.gateway_uptime",
                    "must be in (0, 1]",
                ));
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Resolution.

    /// Resolve the spec against the catalogs: validate, look up every
    /// named site and constellation (case-insensitively, rejecting
    /// duplicates with "did you mean" suggestions), intern inline
    /// definitions, and stamp the spec fingerprint.
    ///
    /// Empty `sites` / `constellations` select the full catalogs, the
    /// same convention as `SweepJob`. A `weather` override rewrites
    /// every resolved site's climate class, so the per-site weather
    /// processes all draw from the overridden climate's parameters.
    pub fn build(&self) -> Result<ResolvedScenario, ScenarioError> {
        self.validate()?;

        let mut sites: Vec<ResolvedSite> = Vec::new();
        if self.sites.is_empty() {
            sites.extend(
                measurement_sites()
                    .into_iter()
                    .map(|site| ResolvedSite { site, track: None }),
            );
        } else {
            for r in &self.sites {
                let resolved = match r {
                    SiteRef::Named(code) => {
                        let site = crate::sites::site_by_code(code).ok_or_else(|| {
                            ScenarioError::UnknownName {
                                field: "scenario.sites",
                                name: code.clone(),
                                suggestion: site_code_suggestion(code),
                            }
                        })?;
                        ResolvedSite { site, track: None }
                    }
                    SiteRef::Inline(spec) => spec.resolve(),
                };
                if sites
                    .iter()
                    .any(|s| s.site.code.eq_ignore_ascii_case(resolved.site.code))
                {
                    return Err(ScenarioError::UnknownName {
                        field: "scenario.sites (duplicated)",
                        name: resolved.site.code.to_string(),
                        suggestion: None,
                    });
                }
                sites.push(resolved);
            }
        }
        if let Some(climate) = self.weather {
            for s in &mut sites {
                s.site.climate = climate;
            }
        }

        let mut constellations: Vec<ConstellationSpec> = Vec::new();
        if self.constellations.is_empty() {
            constellations.extend(all_constellations());
        } else {
            for r in &self.constellations {
                let spec = match r {
                    ConstellationRef::Named(label) => {
                        crate::constellations::constellation_by_name(label).ok_or_else(|| {
                            ScenarioError::UnknownName {
                                field: "scenario.constellations",
                                name: label.clone(),
                                suggestion: constellation_suggestion(label),
                            }
                        })?
                    }
                    ConstellationRef::Inline {
                        walker,
                        tx_power_dbm,
                    } => ConstellationSpec::from_walker(walker.clone(), *tx_power_dbm),
                };
                if constellations
                    .iter()
                    .any(|c| c.name.eq_ignore_ascii_case(spec.name))
                {
                    return Err(ScenarioError::UnknownName {
                        field: "scenario.constellations (duplicated)",
                        name: spec.name.to_string(),
                        suggestion: None,
                    });
                }
                constellations.push(spec);
            }
        }

        Ok(ResolvedScenario {
            name: self.name.clone(),
            seed: self.seed,
            max_days: self.max_days,
            scheduler: self.scheduler,
            sites,
            constellations,
            nodes: self.nodes,
            traffic: self.traffic,
            weather: self.weather,
            outages: self.outages.clone(),
            terrestrial: self.terrestrial.clone(),
            fingerprint: self.fingerprint(),
        })
    }

    // -----------------------------------------------------------------
    // Fingerprint.

    /// FNV-64 fingerprint over the canonical serialisation (see the
    /// module docs).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.to_json().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    // -----------------------------------------------------------------
    // JSON codec.

    /// Serialise to the canonical JSON form [`Self::from_json`]
    /// accepts. Optional fields that are unset are omitted; re-parsing
    /// the output yields a spec equal to `self`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"version\": {},", self.version);
        let _ = write!(out, "  \"name\": \"{}\"", escape_json(&self.name));
        if let Some(seed) = self.seed {
            let _ = write!(out, ",\n  \"seed\": {seed}");
        }
        if let Some(days) = self.max_days {
            let _ = write!(out, ",\n  \"max_days\": {days}");
        }
        match self.scheduler {
            Some(SchedulerSpec::Predictive) => {
                let _ = write!(out, ",\n  \"scheduler\": \"predictive\"");
            }
            Some(SchedulerSpec::Vanilla { dwell_s }) => {
                let _ = write!(
                    out,
                    ",\n  \"scheduler\": {{\"vanilla_dwell_s\": {dwell_s}}}"
                );
            }
            None => {}
        }
        if !self.constellations.is_empty() {
            let _ = write!(out, ",\n  \"constellations\": [");
            for (i, c) in self.constellations.iter().enumerate() {
                let comma = if i + 1 < self.constellations.len() {
                    ","
                } else {
                    ""
                };
                match c {
                    ConstellationRef::Named(label) => {
                        let _ = write!(out, "\n    \"{}\"{comma}", escape_json(label));
                    }
                    ConstellationRef::Inline {
                        walker,
                        tx_power_dbm,
                    } => {
                        // Reuse the walker emitter, indented into place.
                        let body = walker
                            .to_json()
                            .lines()
                            .collect::<Vec<_>>()
                            .join("\n      ");
                        let _ = write!(
                            out,
                            "\n    {{\"tx_power_dbm\": {tx_power_dbm}, \"walker\": {body}}}{comma}"
                        );
                    }
                }
            }
            let _ = write!(out, "\n  ]");
        }
        if !self.sites.is_empty() {
            let _ = write!(out, ",\n  \"sites\": [");
            for (i, s) in self.sites.iter().enumerate() {
                let comma = if i + 1 < self.sites.len() { "," } else { "" };
                match s {
                    SiteRef::Named(code) => {
                        let _ = write!(out, "\n    \"{}\"{comma}", escape_json(code));
                    }
                    SiteRef::Inline(spec) => {
                        let _ = write!(out, "\n    {}{comma}", spec.to_json_inline());
                    }
                }
            }
            let _ = write!(out, "\n  ]");
        }
        if let Some(nodes) = self.nodes {
            let _ = write!(out, ",\n  \"nodes\": {nodes}");
        }
        if let Some(t) = &self.traffic {
            let _ = write!(
                out,
                ",\n  \"traffic\": {{\"payload_bytes\": {}, \"period_s\": {}}}",
                t.payload_bytes, t.period_s
            );
        }
        if let Some(w) = self.weather {
            let _ = write!(out, ",\n  \"weather\": \"{}\"", w.label());
        }
        if !self.outages.is_empty() {
            let _ = write!(out, ",\n  \"outages\": [");
            for (i, w) in self.outages.iter().enumerate() {
                let comma = if i + 1 < self.outages.len() { "," } else { "" };
                let _ = write!(
                    out,
                    "\n    {{\"start_s\": {}, \"end_s\": {}}}{comma}",
                    w.start_s, w.end_s
                );
            }
            let _ = write!(out, "\n  ]");
        }
        if let Some(t) = &self.terrestrial {
            let dists = t
                .distances_km
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                ",\n  \"terrestrial\": {{\"gateways\": {}, \"distances_km\": [{dists}], \
                 \"gateway_uptime\": {}}}",
                t.gateways, t.gateway_uptime
            );
        }
        let _ = write!(out, "\n}}");
        out
    }

    /// Parse a scenario from JSON text, rejecting unknown keys, and
    /// validate it.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let value = JsonParser::new(text).parse_document()?;
        let obj = value.as_object("scenario")?;
        let mut spec = ScenarioSpec::default();
        let mut version = None;
        let mut name = None;
        for (key, val) in obj {
            match key.as_str() {
                "version" => version = Some(val.as_u32("version")?),
                "name" => name = Some(val.as_string("name")?),
                "seed" => spec.seed = Some(val.as_u64("seed")?),
                "max_days" => spec.max_days = Some(val.as_number("max_days")?),
                "scheduler" => spec.scheduler = Some(parse_scheduler(val)?),
                "constellations" => {
                    for item in val.as_array("constellations")? {
                        spec.constellations.push(parse_constellation_ref(item)?);
                    }
                }
                "sites" => {
                    for item in val.as_array("sites")? {
                        spec.sites.push(parse_site_ref(item)?);
                    }
                }
                "nodes" => spec.nodes = Some(val.as_u32("nodes")?),
                "traffic" => spec.traffic = Some(parse_traffic(val)?),
                "weather" => {
                    let label = val.as_string("weather")?;
                    spec.weather = Some(Climate::from_label(&label).ok_or_else(|| {
                        ScenarioError::invalid(
                            "weather",
                            "must be one of subtropical, maritime, continental_dry, \
                             temperate_oceanic",
                        )
                    })?);
                }
                "outages" => {
                    for item in val.as_array("outages")? {
                        spec.outages.push(parse_outage(item)?);
                    }
                }
                "terrestrial" => spec.terrestrial = Some(parse_terrestrial(val)?),
                other => return Err(ScenarioError::unknown_key("scenario", other)),
            }
        }
        spec.version = version.ok_or_else(|| ScenarioError::missing("scenario", "version"))?;
        spec.name = name.ok_or_else(|| ScenarioError::missing("scenario", "name"))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Load and parse a scenario file.
    pub fn from_file(path: &str) -> Result<ScenarioSpec, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        Self::from_json(&text)
    }
}

impl SiteSpec {
    fn validate(&self, index: usize) -> Result<(), ScenarioError> {
        let at = |what: &str| format!("sites[{index}].{what}");
        if self.code.is_empty()
            || !self
                .code
                .chars()
                .all(|c| (c.is_ascii_graphic() || c == ' ') && c != '"' && c != '\\')
        {
            return Err(ScenarioError::invalid(
                &at("code"),
                "must be non-empty printable ASCII without quotes or backslashes",
            ));
        }
        for (what, v) in [
            ("lat_deg", self.lat_deg),
            ("lon_deg", self.lon_deg),
            ("alt_km", self.alt_km),
            ("start_day", self.start_day),
        ] {
            if !v.is_finite() {
                return Err(ScenarioError::invalid(&at(what), "must be finite"));
            }
        }
        if !(-90.0..=90.0).contains(&self.lat_deg) {
            return Err(ScenarioError::invalid(
                &at("lat_deg"),
                "must be in [-90, 90]",
            ));
        }
        if self.stations == 0 {
            return Err(ScenarioError::invalid(&at("stations"), "must be >= 1"));
        }
        if self.start_day < 0.0 {
            return Err(ScenarioError::invalid(&at("start_day"), "must be >= 0"));
        }
        if let Some(track) = &self.track {
            track.validate()?;
        }
        Ok(())
    }

    /// Intern the inline definition into the catalog [`Site`] shape.
    fn resolve(&self) -> ResolvedSite {
        ResolvedSite {
            site: Site {
                code: intern_name(&self.code),
                name: intern_name(&self.name),
                lat_deg: self.lat_deg,
                lon_deg: self.lon_deg,
                alt_km: self.alt_km,
                station_count: self.stations,
                start_day: self.start_day,
                climate: self.climate,
            },
            track: self.track.clone(),
        }
    }

    fn to_json_inline(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"code\": \"{}\", \"name\": \"{}\", \"lat_deg\": {}, \"lon_deg\": {}, \
             \"alt_km\": {}, \"stations\": {}, \"start_day\": {}, \"climate\": \"{}\"",
            escape_json(&self.code),
            escape_json(&self.name),
            self.lat_deg,
            self.lon_deg,
            self.alt_km,
            self.stations,
            self.start_day,
            self.climate.label()
        );
        if let Some(track) = &self.track {
            let _ = write!(out, ", \"track\": [");
            for (i, w) in track.waypoints.iter().enumerate() {
                let comma = if i + 1 < track.waypoints.len() {
                    ","
                } else {
                    ""
                };
                let _ = write!(
                    out,
                    "\n      {{\"t_s\": {}, \"lat_deg\": {}, \"lon_deg\": {}, \"alt_km\": {}}}{comma}",
                    w.t_s, w.lat_deg, w.lon_deg, w.alt_km
                );
            }
            let _ = write!(out, "\n    ]");
        }
        let _ = write!(out, "}}");
        out
    }
}

// ---------------------------------------------------------------------
// Parse helpers (value → typed).

fn parse_scheduler(val: &JsonValue) -> Result<SchedulerSpec, ScenarioError> {
    if let Ok(tag) = val.as_string("scheduler") {
        return if tag.eq_ignore_ascii_case("predictive") {
            Ok(SchedulerSpec::Predictive)
        } else {
            Err(ScenarioError::invalid(
                "scheduler",
                "must be \"predictive\" or {\"vanilla_dwell_s\": seconds}",
            ))
        };
    }
    let obj = val.as_object("scheduler")?;
    let mut dwell = None;
    for (key, v) in obj {
        match key.as_str() {
            "vanilla_dwell_s" => dwell = Some(v.as_number("vanilla_dwell_s")?),
            other => return Err(ScenarioError::unknown_key("scheduler", other)),
        }
    }
    Ok(SchedulerSpec::Vanilla {
        dwell_s: dwell.ok_or_else(|| ScenarioError::missing("scheduler", "vanilla_dwell_s"))?,
    })
}

fn parse_constellation_ref(val: &JsonValue) -> Result<ConstellationRef, ScenarioError> {
    if let Ok(label) = val.as_string("constellation") {
        return Ok(ConstellationRef::Named(label));
    }
    let obj = val.as_object("constellation")?;
    let mut walker = None;
    let mut tx_power_dbm = None;
    for (key, v) in obj {
        match key.as_str() {
            "walker" => walker = Some(WalkerConstellation::from_value(v)?),
            "tx_power_dbm" => tx_power_dbm = Some(v.as_number("tx_power_dbm")?),
            other => return Err(ScenarioError::unknown_key("inline constellation", other)),
        }
    }
    Ok(ConstellationRef::Inline {
        walker: walker.ok_or_else(|| ScenarioError::missing("inline constellation", "walker"))?,
        tx_power_dbm: tx_power_dbm
            .ok_or_else(|| ScenarioError::missing("inline constellation", "tx_power_dbm"))?,
    })
}

fn parse_site_ref(val: &JsonValue) -> Result<SiteRef, ScenarioError> {
    if let Ok(code) = val.as_string("site") {
        return Ok(SiteRef::Named(code));
    }
    let obj = val.as_object("site")?;
    let mut code = None;
    let mut name = None;
    let mut lat_deg = None;
    let mut lon_deg = None;
    let mut alt_km = None;
    let mut stations = None;
    let mut start_day = None;
    let mut climate = None;
    let mut track = None;
    for (key, v) in obj {
        match key.as_str() {
            "code" => code = Some(v.as_string("code")?),
            "name" => name = Some(v.as_string("name")?),
            "lat_deg" => lat_deg = Some(v.as_number("lat_deg")?),
            "lon_deg" => lon_deg = Some(v.as_number("lon_deg")?),
            "alt_km" => alt_km = Some(v.as_number("alt_km")?),
            "stations" => stations = Some(v.as_u32("stations")?),
            "start_day" => start_day = Some(v.as_number("start_day")?),
            "climate" => {
                let label = v.as_string("climate")?;
                climate = Some(Climate::from_label(&label).ok_or_else(|| {
                    ScenarioError::invalid(
                        "site.climate",
                        "must be one of subtropical, maritime, continental_dry, \
                         temperate_oceanic",
                    )
                })?);
            }
            "track" => {
                let mut waypoints = Vec::new();
                for item in v.as_array("track")? {
                    waypoints.push(parse_waypoint(item)?);
                }
                track = Some(MobilityTrack { waypoints });
            }
            other => return Err(ScenarioError::unknown_key("inline site", other)),
        }
    }
    let code = code.ok_or_else(|| ScenarioError::missing("inline site", "code"))?;
    Ok(SiteRef::Inline(SiteSpec {
        name: name.unwrap_or_else(|| code.clone()),
        code,
        lat_deg: lat_deg.ok_or_else(|| ScenarioError::missing("inline site", "lat_deg"))?,
        lon_deg: lon_deg.ok_or_else(|| ScenarioError::missing("inline site", "lon_deg"))?,
        alt_km: alt_km.unwrap_or(0.0),
        stations: stations.unwrap_or(1),
        start_day: start_day.unwrap_or(0.0),
        climate: climate.unwrap_or(Climate::Subtropical),
        track,
    }))
}

fn parse_waypoint(val: &JsonValue) -> Result<Waypoint, ScenarioError> {
    let obj = val.as_object("waypoint")?;
    let mut t_s = None;
    let mut lat_deg = None;
    let mut lon_deg = None;
    let mut alt_km = None;
    for (key, v) in obj {
        match key.as_str() {
            "t_s" => t_s = Some(v.as_number("t_s")?),
            "lat_deg" => lat_deg = Some(v.as_number("lat_deg")?),
            "lon_deg" => lon_deg = Some(v.as_number("lon_deg")?),
            "alt_km" => alt_km = Some(v.as_number("alt_km")?),
            other => return Err(ScenarioError::unknown_key("waypoint", other)),
        }
    }
    Ok(Waypoint {
        t_s: t_s.ok_or_else(|| ScenarioError::missing("waypoint", "t_s"))?,
        lat_deg: lat_deg.ok_or_else(|| ScenarioError::missing("waypoint", "lat_deg"))?,
        lon_deg: lon_deg.ok_or_else(|| ScenarioError::missing("waypoint", "lon_deg"))?,
        alt_km: alt_km.unwrap_or(0.0),
    })
}

fn parse_traffic(val: &JsonValue) -> Result<TrafficSpec, ScenarioError> {
    let obj = val.as_object("traffic")?;
    let mut payload_bytes = None;
    let mut period_s = None;
    for (key, v) in obj {
        match key.as_str() {
            "payload_bytes" => payload_bytes = Some(v.as_u32("payload_bytes")?),
            "period_s" => period_s = Some(v.as_number("period_s")?),
            other => return Err(ScenarioError::unknown_key("traffic", other)),
        }
    }
    Ok(TrafficSpec {
        payload_bytes: payload_bytes
            .ok_or_else(|| ScenarioError::missing("traffic", "payload_bytes"))?,
        period_s: period_s.ok_or_else(|| ScenarioError::missing("traffic", "period_s"))?,
    })
}

fn parse_outage(val: &JsonValue) -> Result<OutageWindow, ScenarioError> {
    let obj = val.as_object("outage")?;
    let mut start_s = None;
    let mut end_s = None;
    for (key, v) in obj {
        match key.as_str() {
            "start_s" => start_s = Some(v.as_number("start_s")?),
            "end_s" => end_s = Some(v.as_number("end_s")?),
            other => return Err(ScenarioError::unknown_key("outage", other)),
        }
    }
    Ok(OutageWindow {
        start_s: start_s.ok_or_else(|| ScenarioError::missing("outage", "start_s"))?,
        end_s: end_s.ok_or_else(|| ScenarioError::missing("outage", "end_s"))?,
    })
}

fn parse_terrestrial(val: &JsonValue) -> Result<TerrestrialSpec, ScenarioError> {
    let obj = val.as_object("terrestrial")?;
    let mut gateways = None;
    let mut distances_km = None;
    let mut gateway_uptime = None;
    for (key, v) in obj {
        match key.as_str() {
            "gateways" => gateways = Some(v.as_u32("gateways")?),
            "distances_km" => {
                let mut dists = Vec::new();
                for item in v.as_array("distances_km")? {
                    dists.push(item.as_number("distances_km[]")?);
                }
                distances_km = Some(dists);
            }
            "gateway_uptime" => gateway_uptime = Some(v.as_number("gateway_uptime")?),
            other => return Err(ScenarioError::unknown_key("terrestrial", other)),
        }
    }
    Ok(TerrestrialSpec {
        gateways: gateways.ok_or_else(|| ScenarioError::missing("terrestrial", "gateways"))?,
        distances_km: distances_km
            .ok_or_else(|| ScenarioError::missing("terrestrial", "distances_km"))?,
        gateway_uptime: gateway_uptime.unwrap_or(1.0),
    })
}

// ---------------------------------------------------------------------
// The committed paper scenarios (each ships as a `.scenario.json`
// pinned bitwise by fingerprint regression tests below).

impl ScenarioSpec {
    /// The determinism-smoke scenario: Tianqi over Hong Kong, one day.
    pub fn tianqi_hk() -> ScenarioSpec {
        ScenarioSpec {
            name: "tianqi_hk".to_string(),
            max_days: Some(1.0),
            constellations: vec![ConstellationRef::Named("Tianqi".to_string())],
            sites: vec![SiteRef::Named("HK".to_string())],
            ..ScenarioSpec::default()
        }
    }

    /// The full paper passive campaign: every Table-1 site, every
    /// Table-3 constellation, each site's full span.
    pub fn paper_passive() -> ScenarioSpec {
        ScenarioSpec {
            name: "paper_passive".to_string(),
            ..ScenarioSpec::default()
        }
    }

    /// The disrupted-comms case study: the Yunnan-style terrestrial
    /// baseline with two scripted day-scale outages in a 7-day window
    /// (a disaster takes the LoRaWAN gateways' backhaul down;
    /// satellite store-and-forward carries the traffic).
    pub fn disrupted_comms() -> ScenarioSpec {
        ScenarioSpec {
            name: "disrupted_comms".to_string(),
            max_days: Some(7.0),
            constellations: vec![ConstellationRef::Named("Tianqi".to_string())],
            nodes: Some(3),
            traffic: Some(TrafficSpec {
                payload_bytes: 20,
                period_s: 1800.0,
            }),
            outages: vec![
                OutageWindow {
                    start_s: 86_400.0,
                    end_s: 172_800.0,
                },
                OutageWindow {
                    start_s: 345_600.0,
                    end_s: 388_800.0,
                },
            ],
            terrestrial: Some(TerrestrialSpec {
                gateways: 3,
                distances_km: vec![0.4, 1.1, 2.0],
                gateway_uptime: 1.0,
            }),
            ..ScenarioSpec::default()
        }
    }

    /// The maritime-tracker mobility scenario: a ship steaming Hong
    /// Kong → Manila over two days with a single-station tracker,
    /// listening to Tianqi.
    pub fn maritime_tracker() -> ScenarioSpec {
        ScenarioSpec {
            name: "maritime_tracker".to_string(),
            max_days: Some(2.0),
            constellations: vec![ConstellationRef::Named("Tianqi".to_string())],
            sites: vec![SiteRef::Inline(SiteSpec {
                code: "SHIP".to_string(),
                name: "HK-Manila tracker".to_string(),
                lat_deg: 22.3,
                lon_deg: 114.2,
                alt_km: 0.0,
                stations: 1,
                start_day: 0.0,
                climate: Climate::Subtropical,
                track: Some(MobilityTrack {
                    waypoints: vec![
                        Waypoint {
                            t_s: 0.0,
                            lat_deg: 22.3,
                            lon_deg: 114.2,
                            alt_km: 0.0,
                        },
                        Waypoint {
                            t_s: 43_200.0,
                            lat_deg: 20.0,
                            lon_deg: 116.5,
                            alt_km: 0.0,
                        },
                        Waypoint {
                            t_s: 108_000.0,
                            lat_deg: 16.5,
                            lon_deg: 119.5,
                            alt_km: 0.0,
                        },
                        Waypoint {
                            t_s: 151_200.0,
                            lat_deg: 14.6,
                            lon_deg: 121.0,
                            alt_km: 0.0,
                        },
                    ],
                }),
            })],
            ..ScenarioSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> ScenarioSpec {
        ScenarioSpec {
            version: SPEC_VERSION,
            name: "kitchen sink".to_string(),
            seed: Some(0xDEAD_BEEF),
            max_days: Some(3.5),
            scheduler: Some(SchedulerSpec::Vanilla { dwell_s: 90.0 }),
            constellations: vec![
                ConstellationRef::Named("Tianqi".to_string()),
                ConstellationRef::Inline {
                    walker: WalkerConstellation {
                        name: "Mega".to_string(),
                        shells: vec![crate::walker::WalkerShell {
                            planes: 4,
                            sats_per_plane: 5,
                            altitude_km: 600.0,
                            inclination_deg: 53.0,
                            phasing: 1,
                        }],
                        frequency_mhz: 401.2,
                        beacon_interval_s: 60.0,
                    },
                    tx_power_dbm: 19.5,
                },
            ],
            sites: vec![
                SiteRef::Named("HK".to_string()),
                SiteRef::Inline(SiteSpec {
                    code: "BOAT".to_string(),
                    name: "Test boat".to_string(),
                    lat_deg: 10.0,
                    lon_deg: 100.0,
                    alt_km: 0.0,
                    stations: 2,
                    start_day: 1.5,
                    climate: Climate::Maritime,
                    track: Some(MobilityTrack {
                        waypoints: vec![
                            Waypoint {
                                t_s: 0.0,
                                lat_deg: 10.0,
                                lon_deg: 100.0,
                                alt_km: 0.0,
                            },
                            Waypoint {
                                t_s: 7200.0,
                                lat_deg: 11.0,
                                lon_deg: 101.0,
                                alt_km: 0.0,
                            },
                        ],
                    }),
                }),
            ],
            nodes: Some(5),
            traffic: Some(TrafficSpec {
                payload_bytes: 24,
                period_s: 900.0,
            }),
            weather: Some(Climate::ContinentalDry),
            outages: vec![
                OutageWindow {
                    start_s: 0.0,
                    end_s: 3600.0,
                },
                OutageWindow {
                    start_s: 7200.0,
                    end_s: 10_800.0,
                },
            ],
            terrestrial: Some(TerrestrialSpec {
                gateways: 2,
                distances_km: vec![0.5, 1.5],
                gateway_uptime: 0.9,
            }),
        }
    }

    #[test]
    fn json_round_trip_identity() {
        for spec in [
            ScenarioSpec::default(),
            ScenarioSpec::tianqi_hk(),
            ScenarioSpec::paper_passive(),
            ScenarioSpec::disrupted_comms(),
            ScenarioSpec::maritime_tracker(),
            full_spec(),
        ] {
            let parsed = ScenarioSpec::from_json(&spec.to_json())
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(parsed, spec, "{}", spec.name);
            assert_eq!(parsed.fingerprint(), spec.fingerprint(), "{}", spec.name);
        }
    }

    #[test]
    fn unknown_keys_and_garbage_are_typed_errors() {
        assert!(matches!(
            ScenarioSpec::from_json(""),
            Err(ScenarioError::Parse(_))
        ));
        assert!(matches!(
            ScenarioSpec::from_json("{}"),
            Err(ScenarioError::Parse(_))
        ));
        let with_typo = ScenarioSpec::tianqi_hk()
            .to_json()
            .replace("\"max_days\"", "\"max_dyas\"");
        assert!(matches!(
            ScenarioSpec::from_json(&with_typo),
            Err(ScenarioError::Parse(_))
        ));
        // Truncations at every prefix must error, never panic.
        let text = full_spec().to_json();
        for cut in 0..text.len() {
            if text.is_char_boundary(cut) {
                assert!(ScenarioSpec::from_json(&text[..cut]).is_err());
            }
        }
    }

    #[test]
    fn version_gate() {
        let bumped = ScenarioSpec::tianqi_hk()
            .to_json()
            .replace("\"version\": 1", "\"version\": 2");
        assert_eq!(
            ScenarioSpec::from_json(&bumped),
            Err(ScenarioError::UnsupportedVersion {
                found: 2,
                supported: SPEC_VERSION
            })
        );
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut bad = ScenarioSpec::disrupted_comms();
        bad.outages[1].start_s = 100_000.0; // overlaps window 0
        assert!(matches!(
            bad.validate(),
            Err(ScenarioError::InvalidValue { .. })
        ));
        let mut bad = ScenarioSpec::tianqi_hk();
        bad.max_days = Some(f64::NAN);
        assert!(bad.validate().is_err());
        let mut bad = ScenarioSpec::tianqi_hk();
        bad.name = "bad\"name".to_string();
        assert!(bad.validate().is_err());
        let mut bad = ScenarioSpec::disrupted_comms();
        bad.terrestrial.as_mut().unwrap().gateway_uptime = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn build_resolves_names_case_insensitively_with_suggestions() {
        let mut spec = ScenarioSpec::tianqi_hk();
        spec.constellations = vec![ConstellationRef::Named("tianqi".to_string())];
        spec.sites = vec![SiteRef::Named("hk".to_string())];
        let resolved = spec.build().expect("case-insensitive lookups");
        assert_eq!(resolved.sites[0].site.code, "HK");
        assert_eq!(resolved.constellations[0].name, "Tianqi");

        spec.sites = vec![SiteRef::Named("SYDD".to_string())];
        let err = spec.build().unwrap_err();
        assert_eq!(
            err,
            ScenarioError::UnknownName {
                field: "scenario.sites",
                name: "SYDD".to_string(),
                suggestion: Some("SYD"),
            }
        );
        assert!(err.to_string().contains("did you mean"));

        spec.sites = vec![
            SiteRef::Named("HK".to_string()),
            SiteRef::Named("hk".to_string()),
        ];
        assert!(matches!(
            spec.build(),
            Err(ScenarioError::UnknownName {
                field: "scenario.sites (duplicated)",
                ..
            })
        ));
    }

    #[test]
    fn empty_selections_mean_full_catalogs() {
        let resolved = ScenarioSpec::paper_passive().build().expect("build");
        assert_eq!(resolved.sites.len(), measurement_sites().len());
        assert_eq!(resolved.constellations.len(), all_constellations().len());
        assert!(!resolved.has_mobile_sites());
    }

    #[test]
    fn inline_walker_resolves_to_exact_layout() {
        let spec = ScenarioSpec {
            name: "inline".to_string(),
            constellations: vec![ConstellationRef::Inline {
                walker: WalkerConstellation {
                    name: "MegaInline".to_string(),
                    shells: vec![crate::walker::WalkerShell {
                        planes: 3,
                        sats_per_plane: 4,
                        altitude_km: 550.0,
                        inclination_deg: 53.0,
                        phasing: 1,
                    }],
                    frequency_mhz: 401.0,
                    beacon_interval_s: 60.0,
                },
                tx_power_dbm: 20.0,
            }],
            sites: vec![SiteRef::Named("HK".to_string())],
            ..ScenarioSpec::default()
        };
        let resolved = spec.build().expect("build");
        let c = &resolved.constellations[0];
        assert_eq!(c.name, "MegaInline");
        assert_eq!(c.sat_count(), 12);
        let epoch = crate::sites::campaign_epoch();
        let catalog = c.catalog(epoch);
        // The exact Walker layout, not the band-interpolated one: the
        // first plane's satellites share a RAAN.
        assert_eq!(
            catalog[0].elements.raan_rad.to_bits(),
            catalog[1].elements.raan_rad.to_bits()
        );
    }

    #[test]
    fn mobile_site_round_trips_and_resolves() {
        let spec = ScenarioSpec::maritime_tracker();
        let resolved = spec.build().expect("build");
        assert!(resolved.has_mobile_sites());
        let ship = &resolved.sites[0];
        assert_eq!(ship.site.code, "SHIP");
        assert_eq!(ship.site.station_count, 1);
        let track = ship.track.as_ref().expect("track");
        assert_eq!(track.waypoints.len(), 4);
        // A second build interns the same pointer for the code.
        let again = spec.build().expect("build");
        assert!(core::ptr::eq(ship.site.code, again.sites[0].site.code));
    }

    /// The committed `.scenario.json` files are the builtins, byte for
    /// byte, and their fingerprints are pinned: editing a file (or the
    /// builtin) in any way that changes results fails this test.
    #[test]
    fn committed_scenarios_are_pinned_bitwise() {
        for (builtin, file, pinned) in [
            (
                ScenarioSpec::tianqi_hk(),
                include_str!("../../../scenarios/tianqi_hk.scenario.json"),
                TIANQI_HK_FINGERPRINT,
            ),
            (
                ScenarioSpec::paper_passive(),
                include_str!("../../../scenarios/paper_passive.scenario.json"),
                PAPER_PASSIVE_FINGERPRINT,
            ),
            (
                ScenarioSpec::disrupted_comms(),
                include_str!("../../../scenarios/disrupted_comms.scenario.json"),
                DISRUPTED_COMMS_FINGERPRINT,
            ),
            (
                ScenarioSpec::maritime_tracker(),
                include_str!("../../../scenarios/maritime_tracker.scenario.json"),
                MARITIME_TRACKER_FINGERPRINT,
            ),
        ] {
            assert_eq!(file, builtin.to_json(), "{} file drifted", builtin.name);
            let parsed = ScenarioSpec::from_json(file).expect("committed file parses");
            assert_eq!(parsed, builtin);
            assert_eq!(
                parsed.fingerprint(),
                pinned,
                "{} fingerprint drifted (update the pin only with the scenario)",
                builtin.name
            );
        }
    }

    /// Pinned FNV-64 fingerprints of the committed paper scenarios.
    const TIANQI_HK_FINGERPRINT: u64 = 0x801410c31deada57;
    const PAPER_PASSIVE_FINGERPRINT: u64 = 0xc4f0822fa2dfcad5;
    const DISRUPTED_COMMS_FINGERPRINT: u64 = 0x35e8d800effc1eaa;
    const MARITIME_TRACKER_FINGERPRINT: u64 = 0x57a704acb0e45f42;

    /// Regenerate the committed scenario files after editing a builtin:
    /// `cargo test -p satiot-scenarios --lib -- --ignored regen`, then
    /// update the fingerprint pins above from the printed values.
    #[test]
    #[ignore]
    fn regen_committed_scenario_files() {
        for spec in [
            ScenarioSpec::tianqi_hk(),
            ScenarioSpec::paper_passive(),
            ScenarioSpec::disrupted_comms(),
            ScenarioSpec::maritime_tracker(),
        ] {
            let path = format!("../../scenarios/{}.scenario.json", spec.name);
            std::fs::write(&path, spec.to_json()).expect("write scenario file");
            println!("{}: {:#018x}", spec.name, spec.fingerprint());
        }
    }
}
