//! Minimal hand-rolled JSON subset codec shared by the scenario
//! loaders ([`crate::walker`], [`crate::spec`]).
//!
//! The build environment vendors no serde, so the subset grammar lives
//! here: objects, arrays, numbers, strings, `true`/`false`;
//! whitespace-insensitive; duplicate handling and unknown-key rejection
//! are the *callers'* responsibility (they walk the preserved key
//! order). Errors carry a byte offset so truncated or hostile inputs
//! fail loudly with a location instead of panicking.

use core::fmt;

/// Error from the JSON layer: malformed syntax or a type mismatch.
///
/// Callers wrap this in their own typed error (`WalkerParseError`,
/// `ScenarioError`) via `From`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value. Object fields preserve source order so callers
/// can reject unknown keys with the original spelling.
pub(crate) enum JsonValue {
    Number(f64),
    String(String),
    // The grammar accepts booleans so `true` in a number slot fails
    // with "must be a number", not a parse error; no v1 field is
    // boolean yet, so the payload goes unread.
    #[allow(dead_code)]
    Bool(bool),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub(crate) fn as_object(&self, what: &str) -> Result<&[(String, JsonValue)], JsonError> {
        match self {
            JsonValue::Object(fields) => Ok(fields),
            _ => Err(JsonError(format!("{what} must be an object"))),
        }
    }

    pub(crate) fn as_array(&self, what: &str) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            _ => Err(JsonError(format!("{what} must be an array"))),
        }
    }

    pub(crate) fn as_string(&self, what: &str) -> Result<String, JsonError> {
        match self {
            JsonValue::String(s) => Ok(s.clone()),
            _ => Err(JsonError(format!("{what} must be a string"))),
        }
    }

    pub(crate) fn as_number(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            _ => Err(JsonError(format!("{what} must be a number"))),
        }
    }

    #[allow(dead_code)] // no v1 spec field is boolean yet
    pub(crate) fn as_bool(&self, what: &str) -> Result<bool, JsonError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(JsonError(format!("{what} must be true or false"))),
        }
    }

    pub(crate) fn as_u32(&self, what: &str) -> Result<u32, JsonError> {
        let n = self.as_number(what)?;
        if n.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&n) {
            return Err(JsonError(format!(
                "{what} must be a non-negative integer, got {n}"
            )));
        }
        Ok(n as u32)
    }

    pub(crate) fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        let n = self.as_number(what)?;
        // f64 represents integers exactly up to 2^53; scenario seeds and
        // counts stay far below that.
        if n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
            return Err(JsonError(format!(
                "{what} must be a non-negative integer (< 2^53), got {n}"
            )));
        }
        Ok(n as u64)
    }
}

pub(crate) struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    pub(crate) fn parse_document(&mut self) -> Result<JsonValue, JsonError> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing content"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar (input was &str, so
                    // boundaries are well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_bool(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        let rest = &self.bytes[self.pos..];
        if rest.starts_with(b"true") {
            self.pos += 4;
            Ok(JsonValue::Bool(true))
        } else if rest.starts_with(b"false") {
            self.pos += 5;
            Ok(JsonValue::Bool(false))
        } else {
            Err(self.err("expected a JSON value"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| JsonError(format!("bad number {text:?} at byte {start}")))?;
        Ok(JsonValue::Number(n))
    }
}

/// Escape a string for embedding in emitted JSON (the emitters only
/// produce the two escapes the parser accepts).
pub(crate) fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bools_and_nested_values() {
        let v = JsonParser::new("{\"a\": [true, false, 1.5], \"b\": \"x\"}")
            .parse_document()
            .expect("parse");
        let obj = v.as_object("doc").expect("object");
        assert_eq!(obj.len(), 2);
        let arr = obj[0].1.as_array("a").expect("array");
        assert!(arr[0].as_bool("a[0]").expect("bool"));
        assert!(!arr[1].as_bool("a[1]").expect("bool"));
        assert_eq!(arr[2].as_number("a[2]").expect("number"), 1.5);
        assert_eq!(obj[1].1.as_string("b").expect("string"), "x");
    }

    #[test]
    fn rejects_truncations_with_offsets() {
        for text in ["", "{", "{\"a\": tru", "[1,", "\"unterminated"] {
            let err = JsonParser::new(text).parse_document();
            assert!(err.is_err(), "{text:?} must fail");
        }
    }

    #[test]
    fn u64_round_trips_large_seeds() {
        let v = JsonParser::new("1311768467463790320")
            .parse_document()
            .expect("parse");
        // 0x1234_5678_9ABC_DEF0 exceeds 2^53 — rejected, not silently
        // rounded.
        assert!(v.as_u64("seed").is_err());
        let small = JsonParser::new("281474976710655")
            .parse_document()
            .expect("parse");
        assert_eq!(small.as_u64("seed").expect("u64"), 0xFFFF_FFFF_FFFF);
    }
}
