//! Measurement sites (paper Table 1), Tianqi ground stations, and the
//! active-deployment locations.

use satiot_channel::weather::WeatherParams;
use satiot_orbit::frames::Geodetic;
use satiot_orbit::time::JulianDate;

/// Campaign origin: 2024-09-01 00:00 UTC — the month the first stations
/// (HK, GZ, YC) came online.
pub fn campaign_epoch() -> JulianDate {
    JulianDate::from_calendar(2024, 9, 1, 0, 0, 0.0)
}

/// Campaign end: 2025-04-01 00:00 UTC (the paper's traces span
/// September 2024 – March 2025).
pub fn campaign_end() -> JulianDate {
    JulianDate::from_calendar(2025, 4, 1, 0, 0, 0.0)
}

/// Coarse climate classes mapped onto weather-process parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Climate {
    /// Humid subtropical (HK, GZ, SH, NC, Yunnan).
    Subtropical,
    /// Maritime (London).
    Maritime,
    /// Continental/dry (Yinchuan, Pittsburgh winters).
    ContinentalDry,
    /// Temperate oceanic (Sydney).
    TemperateOceanic,
}

impl Climate {
    /// Stable label used by scenario files (see `spec`).
    pub fn label(self) -> &'static str {
        match self {
            Climate::Subtropical => "subtropical",
            Climate::Maritime => "maritime",
            Climate::ContinentalDry => "continental_dry",
            Climate::TemperateOceanic => "temperate_oceanic",
        }
    }

    /// Parse a scenario-file label (ASCII-case-insensitive).
    pub fn from_label(label: &str) -> Option<Climate> {
        [
            Climate::Subtropical,
            Climate::Maritime,
            Climate::ContinentalDry,
            Climate::TemperateOceanic,
        ]
        .into_iter()
        .find(|c| c.label().eq_ignore_ascii_case(label))
    }

    /// Weather-chain parameters for this climate.
    pub fn weather_params(self) -> WeatherParams {
        match self {
            Climate::Subtropical => WeatherParams::default(),
            Climate::Maritime => WeatherParams::maritime(),
            Climate::ContinentalDry => WeatherParams::temperate_dry(),
            Climate::TemperateOceanic => WeatherParams {
                mean_sunny_h: 26.0,
                ..WeatherParams::default()
            },
        }
    }
}

/// One measurement site of the passive campaign.
#[derive(Debug, Clone)]
pub struct Site {
    /// Short code as used in the paper's Table 1 (`"HK"` …).
    pub code: &'static str,
    /// Full city name.
    pub name: &'static str,
    /// Latitude, degrees north.
    pub lat_deg: f64,
    /// Longitude, degrees east.
    pub lon_deg: f64,
    /// Site altitude, km.
    pub alt_km: f64,
    /// Ground stations deployed at this site.
    pub station_count: u32,
    /// Deployment start, days after [`campaign_epoch`].
    pub start_day: f64,
    /// Climate class.
    pub climate: Climate,
}

impl Site {
    /// Geodetic location of the site.
    pub fn geodetic(&self) -> Geodetic {
        Geodetic::from_degrees(self.lat_deg, self.lon_deg, self.alt_km)
    }

    /// Deployment start as an absolute Julian date.
    pub fn start(&self) -> JulianDate {
        campaign_epoch() + self.start_day
    }

    /// Days of operation until the campaign end.
    pub fn active_days(&self) -> f64 {
        campaign_end().days_since(self.start())
    }
}

fn days_from_epoch(year: i32, month: u32) -> f64 {
    JulianDate::from_calendar(year, month, 1, 0, 0, 0.0).days_since(campaign_epoch())
}

/// The eight measurement sites of Table 1 with their deployment dates.
pub fn measurement_sites() -> Vec<Site> {
    vec![
        Site {
            code: "PGH",
            name: "Pittsburgh",
            lat_deg: 40.4406,
            lon_deg: -79.9959,
            alt_km: 0.3,
            station_count: 3,
            start_day: days_from_epoch(2025, 2),
            climate: Climate::ContinentalDry,
        },
        Site {
            code: "LDN",
            name: "London",
            lat_deg: 51.5074,
            lon_deg: -0.1278,
            alt_km: 0.02,
            station_count: 5,
            start_day: days_from_epoch(2025, 2),
            climate: Climate::Maritime,
        },
        Site {
            code: "SH",
            name: "Shanghai",
            lat_deg: 31.2304,
            lon_deg: 121.4737,
            alt_km: 0.01,
            station_count: 2,
            start_day: days_from_epoch(2024, 10),
            climate: Climate::Subtropical,
        },
        Site {
            code: "GZ",
            name: "Guangzhou",
            lat_deg: 23.1291,
            lon_deg: 113.2644,
            alt_km: 0.02,
            station_count: 2,
            start_day: days_from_epoch(2024, 9),
            climate: Climate::Subtropical,
        },
        Site {
            code: "SYD",
            name: "Sydney",
            lat_deg: -33.8688,
            lon_deg: 151.2093,
            alt_km: 0.02,
            station_count: 4,
            start_day: days_from_epoch(2025, 1),
            climate: Climate::TemperateOceanic,
        },
        Site {
            code: "HK",
            name: "Hong Kong",
            lat_deg: 22.3193,
            lon_deg: 114.1694,
            alt_km: 0.05,
            station_count: 6,
            start_day: days_from_epoch(2024, 9),
            climate: Climate::Subtropical,
        },
        Site {
            code: "NC",
            name: "Nanchang",
            lat_deg: 28.6820,
            lon_deg: 115.8579,
            alt_km: 0.03,
            station_count: 1,
            start_day: days_from_epoch(2024, 11),
            climate: Climate::Subtropical,
        },
        Site {
            code: "YC",
            name: "Yinchuan",
            lat_deg: 38.4872,
            lon_deg: 106.2309,
            alt_km: 1.1,
            station_count: 4,
            start_day: days_from_epoch(2024, 9),
            climate: Climate::ContinentalDry,
        },
    ]
}

/// Look up a measurement site by its Table 1 code (`"HK"` …).
///
/// Matching is ASCII-case-insensitive — `"hk"` finds Hong Kong — since
/// the codes reach this lookup from hand-written sweep queues and
/// scenario files, where case is the most common typo.
pub fn site_by_code(code: &str) -> Option<Site> {
    measurement_sites()
        .into_iter()
        .find(|s| s.code.eq_ignore_ascii_case(code))
}

/// The catalog code closest to a failed lookup, for "did you mean"
/// rejection messages (`None` when nothing is plausibly close).
pub fn site_code_suggestion(code: &str) -> Option<&'static str> {
    crate::names::closest(code, measurement_sites().iter().map(|s| s.code))
}

/// The four cities used for the per-constellation availability analysis
/// (paper §3.1: one per continent).
pub fn availability_sites() -> Vec<Site> {
    measurement_sites()
        .into_iter()
        .filter(|s| matches!(s.code, "HK" | "SYD" | "LDN" | "PGH"))
        .collect()
}

/// Tianqi's 12 ground stations, all in China (paper §2.3). Exact
/// locations are not published; these are spread across China's major
/// telemetry regions, which is what the delivery-delay distribution
/// depends on.
pub fn tianqi_ground_stations() -> Vec<(&'static str, Geodetic)> {
    vec![
        ("Beijing", Geodetic::from_degrees(40.07, 116.59, 0.05)),
        ("Shanghai", Geodetic::from_degrees(31.14, 121.80, 0.01)),
        ("Guangzhou", Geodetic::from_degrees(23.39, 113.30, 0.02)),
        ("Chengdu", Geodetic::from_degrees(30.57, 103.95, 0.5)),
        ("Xi'an", Geodetic::from_degrees(34.44, 108.75, 0.4)),
        ("Harbin", Geodetic::from_degrees(45.62, 126.25, 0.14)),
        ("Urumqi", Geodetic::from_degrees(43.91, 87.47, 0.65)),
        ("Lhasa", Geodetic::from_degrees(29.30, 90.91, 3.57)),
        ("Kunming", Geodetic::from_degrees(24.99, 102.74, 1.89)),
        ("Wuhan", Geodetic::from_degrees(30.78, 114.21, 0.02)),
        ("Sanya", Geodetic::from_degrees(18.30, 109.41, 0.01)),
        ("Kashgar", Geodetic::from_degrees(39.54, 76.02, 1.29)),
    ]
}

/// The Yunnan coffee plantation hosting the three Tianqi nodes
/// (Appendix B: near China's border in Yunnan province).
pub fn yunnan_farm() -> Geodetic {
    Geodetic::from_degrees(22.78, 100.98, 1.3)
}

/// The subscriber server in Hong Kong receiving the farm data.
pub fn hong_kong_server() -> Geodetic {
    Geodetic::from_degrees(22.3193, 114.1694, 0.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_seven_stations_across_eight_sites() {
        let sites = measurement_sites();
        assert_eq!(sites.len(), 8);
        let total: u32 = sites.iter().map(|s| s.station_count).sum();
        assert_eq!(total, 27); // Paper: 27 ground stations.
    }

    #[test]
    fn start_dates_match_table_1() {
        let by_code =
            |c: &str| site_by_code(c).unwrap_or_else(|| panic!("unknown site code {c:?}"));
        assert_eq!(by_code("HK").start_day, 0.0); // 2024/09.
        assert_eq!(by_code("GZ").start_day, 0.0);
        assert_eq!(by_code("YC").start_day, 0.0);
        assert_eq!(by_code("SH").start_day, 30.0); // 2024/10.
        assert_eq!(by_code("NC").start_day, 61.0); // 2024/11.
        assert_eq!(by_code("SYD").start_day, 122.0); // 2025/01.
        assert_eq!(by_code("LDN").start_day, 153.0); // 2025/02.
        assert_eq!(by_code("PGH").start_day, 153.0);
    }

    #[test]
    fn campaign_spans_seven_months() {
        let days = campaign_end().days_since(campaign_epoch());
        assert_eq!(days, 212.0); // Sep 2024 – Mar 2025 inclusive.
        for site in measurement_sites() {
            assert!(site.active_days() > 0.0);
            assert!(site.active_days() <= days);
        }
    }

    #[test]
    fn station_counts_match_table_1() {
        let expected = [
            ("PGH", 3),
            ("LDN", 5),
            ("SH", 2),
            ("GZ", 2),
            ("SYD", 4),
            ("HK", 6),
            ("NC", 1),
            ("YC", 4),
        ];
        for (code, count) in expected {
            let site = site_by_code(code).unwrap_or_else(|| panic!("unknown site code {code:?}"));
            assert_eq!(site.station_count, count, "{code}");
        }
    }

    #[test]
    fn availability_sites_cover_four_continents() {
        let codes: Vec<&str> = availability_sites().iter().map(|s| s.code).collect();
        assert_eq!(codes.len(), 4);
        for c in ["HK", "SYD", "LDN", "PGH"] {
            assert!(codes.contains(&c));
        }
    }

    #[test]
    fn sites_have_sane_coordinates() {
        for site in measurement_sites() {
            assert!((-90.0..=90.0).contains(&site.lat_deg), "{}", site.code);
            assert!((-180.0..=180.0).contains(&site.lon_deg), "{}", site.code);
            let ecef = site.geodetic().to_ecef();
            assert!(ecef.norm() > 6_300.0);
        }
    }

    #[test]
    fn twelve_tianqi_ground_stations_in_china() {
        let gs = tianqi_ground_stations();
        assert_eq!(gs.len(), 12);
        for (name, g) in &gs {
            // All within mainland China's bounding box.
            let lat = g.lat_rad.to_degrees();
            let lon = g.lon_rad.to_degrees();
            assert!((17.0..54.0).contains(&lat), "{name} lat {lat}");
            assert!((73.0..136.0).contains(&lon), "{name} lon {lon}");
        }
    }

    #[test]
    fn farm_is_in_yunnan() {
        let farm = yunnan_farm();
        let lat = farm.lat_rad.to_degrees();
        let lon = farm.lon_rad.to_degrees();
        assert!((21.0..29.0).contains(&lat));
        assert!((97.0..106.0).contains(&lon));
        assert!(farm.alt_km > 0.5); // Highland coffee country.
    }

    #[test]
    fn climates_map_to_weather_params() {
        // Maritime London rains more than dry Yinchuan in expectation:
        // compare mean rainy dwell / (sunny dwell) as a crude proxy.
        let maritime = Climate::Maritime.weather_params();
        let dry = Climate::ContinentalDry.weather_params();
        assert!(
            maritime.mean_rainy_h / maritime.mean_sunny_h > dry.mean_rainy_h / dry.mean_sunny_h
        );
    }
}
