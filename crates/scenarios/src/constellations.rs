//! Synthetic constellation catalogs matching the paper's Table 3.
//!
//! | SNO    | # SATs    | Orbit altitude   | Inclination | DtS frequency |
//! |--------|-----------|------------------|-------------|---------------|
//! | Tianqi | 16        | 815.7–897.5 km   | 49.97°      | 400.45 MHz    |
//! | Tianqi | 4         | 544.0–556.9 km   | 35.00°      | 400.45 MHz    |
//! | Tianqi | 2         | 441.9–493.0 km   | 97.61°      | 400.45 MHz    |
//! | FOSSA  | 3         | 508.7–512.0 km   | 97.36°      | 401.7 MHz     |
//! | PICO   | 9         | 507.9–522.1 km   | 97.72°      | 436.26 MHz    |
//! | CSTP   | 5         | 468.3–523.7 km   | 97.45°      | 437.985 MHz   |
//!
//! Satellites are laid out Walker-style: RAAN spread across planes,
//! phases spread in-plane, altitudes interpolated across the published
//! band. The layout is index-deterministic so catalogs are reproducible
//! without an RNG.

use crate::walker::{WalkerConstellation, WalkerShell};
use satiot_orbit::elements::{wrap_tau, Elements};
use satiot_orbit::sgp4::Sgp4;
use satiot_orbit::time::JulianDate;
use satiot_orbit::tle::Tle;
use satiot_orbit::OrbitError;

/// One altitude/inclination shell of a constellation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shell {
    /// Satellites in this shell.
    pub count: u32,
    /// Lowest orbit altitude, km.
    pub alt_lo_km: f64,
    /// Highest orbit altitude, km.
    pub alt_hi_km: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
}

/// A constellation as the paper characterises it.
#[derive(Debug, Clone)]
pub struct ConstellationSpec {
    /// Operator label (`"Tianqi"` …).
    pub name: &'static str,
    /// Operator region (Table 3's Region column).
    pub region: &'static str,
    /// Orbital shells.
    pub shells: Vec<Shell>,
    /// DtS beacon/downlink frequency, MHz.
    pub dts_frequency_mhz: f64,
    /// Beacon broadcast period, seconds.
    pub beacon_interval_s: f64,
    /// Satellite transmit power, dBm. Tianqi flies commercial-grade
    /// payloads; the cubesat constellations (FOSSA/PICO/CSTP) run
    /// lower-power transmitters, which is why they contribute only ~3 %
    /// of the paper's 121 744 traces (Table 3's trace column).
    pub tx_power_dbm: f64,
    /// When set, [`Self::catalog`] delegates to this exact Walker-delta
    /// stack instead of the Table-3 band-interpolated layout — the path
    /// scenario files use for inline constellations. The published
    /// catalogs keep `None` so their pinned bitwise fingerprints are
    /// untouched.
    pub walker: Option<WalkerConstellation>,
}

impl ConstellationSpec {
    /// Total satellite count across shells.
    pub fn sat_count(&self) -> u32 {
        match &self.walker {
            Some(w) => w.sat_count(),
            None => self.shells.iter().map(|s| s.count).sum(),
        }
    }

    /// Wrap an inline Walker stack as a catalog-compatible spec:
    /// [`Self::catalog`] generates the exact Walker layout, the Table-3
    /// style fields mirror the stack so channel/link code (frequency,
    /// beacon cadence, transmit power) reads one shape for both kinds.
    pub fn from_walker(walker: WalkerConstellation, tx_power_dbm: f64) -> ConstellationSpec {
        ConstellationSpec {
            name: crate::walker::intern_name(&walker.name),
            region: "custom",
            shells: walker
                .shells
                .iter()
                .map(|s| Shell {
                    count: s.count(),
                    alt_lo_km: s.altitude_km,
                    alt_hi_km: s.altitude_km,
                    inclination_deg: s.inclination_deg,
                })
                .collect(),
            dts_frequency_mhz: walker.frequency_mhz,
            beacon_interval_s: walker.beacon_interval_s,
            tx_power_dbm,
            walker: Some(walker),
        }
    }
}

/// One satellite of a generated catalog.
#[derive(Debug, Clone)]
pub struct SatelliteDef {
    /// Operator label.
    pub constellation: &'static str,
    /// Index within the constellation (0-based).
    pub sat_id: u32,
    /// Mean elements at the catalog epoch.
    pub elements: Elements,
    /// DtS frequency, MHz.
    pub frequency_mhz: f64,
    /// Beacon period, seconds.
    pub beacon_interval_s: f64,
}

impl SatelliteDef {
    /// Build the SGP4 propagator for this satellite.
    pub fn sgp4(&self) -> Result<Sgp4, OrbitError> {
        self.elements.to_sgp4()
    }

    /// Emit this satellite as a named TLE (round-trips through the full
    /// parser).
    pub fn tle(&self) -> Result<Tle, OrbitError> {
        self.elements.to_tle(
            70_000 + self.sat_id,
            &format!("{}-{}", self.constellation, self.sat_id),
        )
    }
}

/// The Tianqi constellation (22 satellites in three shells).
pub fn tianqi() -> ConstellationSpec {
    ConstellationSpec {
        name: "Tianqi",
        region: "China",
        shells: vec![
            Shell {
                count: 16,
                alt_lo_km: 815.7,
                alt_hi_km: 897.5,
                inclination_deg: 49.97,
            },
            Shell {
                count: 4,
                alt_lo_km: 544.0,
                alt_hi_km: 556.9,
                inclination_deg: 35.00,
            },
            Shell {
                count: 2,
                alt_lo_km: 441.9,
                alt_hi_km: 493.0,
                inclination_deg: 97.61,
            },
        ],
        dts_frequency_mhz: 400.45,
        beacon_interval_s: 60.0,
        tx_power_dbm: 22.0,
        walker: None,
    }
}

/// The FOSSA constellation (3 satellites at 433 MHz-band frequencies).
pub fn fossa() -> ConstellationSpec {
    ConstellationSpec {
        name: "FOSSA",
        region: "EU",
        shells: vec![Shell {
            count: 3,
            alt_lo_km: 508.7,
            alt_hi_km: 512.0,
            inclination_deg: 97.36,
        }],
        dts_frequency_mhz: 401.7,
        beacon_interval_s: 90.0,
        tx_power_dbm: 15.0,
        walker: None,
    }
}

/// The PICO constellation (9 satellites).
pub fn pico() -> ConstellationSpec {
    ConstellationSpec {
        name: "PICO",
        region: "US",
        shells: vec![Shell {
            count: 9,
            alt_lo_km: 507.9,
            alt_hi_km: 522.1,
            inclination_deg: 97.72,
        }],
        dts_frequency_mhz: 436.26,
        beacon_interval_s: 60.0,
        tx_power_dbm: 16.0,
        walker: None,
    }
}

/// The CSTP constellation (5 satellites).
pub fn cstp() -> ConstellationSpec {
    ConstellationSpec {
        name: "CSTP",
        region: "Russia",
        shells: vec![Shell {
            count: 5,
            alt_lo_km: 468.3,
            alt_hi_km: 523.7,
            inclination_deg: 97.45,
        }],
        dts_frequency_mhz: 437.985,
        beacon_interval_s: 75.0,
        tx_power_dbm: 16.0,
        walker: None,
    }
}

/// All four measured constellations (39 satellites total).
pub fn all_constellations() -> Vec<ConstellationSpec> {
    vec![tianqi(), fossa(), pico(), cstp()]
}

/// Look up a constellation by its label.
///
/// Matching is ASCII-case-insensitive — `"tianqi"` finds Tianqi — since
/// labels reach this lookup from hand-written sweep queues and scenario
/// files, where case is the most common typo.
pub fn constellation_by_name(name: &str) -> Option<ConstellationSpec> {
    all_constellations()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

/// The catalog label closest to a failed lookup, for "did you mean"
/// rejection messages (`None` when nothing is plausibly close).
pub fn constellation_suggestion(name: &str) -> Option<&'static str> {
    crate::names::closest(name, all_constellations().iter().map(|c| c.name))
}

/// Largest divisor of `n` that is at most `cap` (at least 1), so every
/// plane of a shell holds exactly `n / planes` satellites.
fn planes_for(n: u32, cap: u32) -> u32 {
    (1..=cap.min(n))
        .rev()
        .find(|d| n.is_multiple_of(*d))
        .unwrap_or(1)
}

impl ConstellationSpec {
    /// Generate the satellite catalog at `epoch`.
    ///
    /// Layout per shell: an exact Walker-delta grid
    /// ([`WalkerShell`]) of `planes × sats_per_plane` satellites, where
    /// `planes` is the largest divisor of the shell count ≤ 6 — every
    /// plane is exactly full with uniform in-plane spacing for
    /// arbitrary counts (the old layout capped planes at
    /// `count.clamp(1, 6)` and `div_ceil` left the last plane of the
    /// 16- and 9-sat shells underfilled with uneven spacing).
    /// Altitudes interpolate linearly across the shell's published
    /// band; each shell's RAANs get a golden-angle-ish offset so
    /// shells do not align artificially, and each satellite a
    /// golden-angle anomaly jitter that breaks the RAAN+π / MA+π
    /// degeneracy (without it, opposite planes of a small shell start
    /// nearly coincident). Stored angles are normalised into
    /// `[0, 2π)`.
    pub fn catalog(&self, epoch: JulianDate) -> Vec<SatelliteDef> {
        if let Some(walker) = &self.walker {
            return walker.catalog(epoch);
        }
        let mut sats = Vec::with_capacity(self.sat_count() as usize);
        let mut sat_id = 0u32;
        for (shell_idx, shell) in self.shells.iter().enumerate() {
            let n = shell.count;
            let planes = planes_for(n.max(1), 6);
            let walker = WalkerShell {
                planes,
                sats_per_plane: n.max(1) / planes,
                altitude_km: 0.5 * (shell.alt_lo_km + shell.alt_hi_km),
                inclination_deg: shell.inclination_deg,
                phasing: 1.min(planes - 1),
            };
            for i in 0..n {
                let (plane, slot) = walker.plane_slot(i);
                let alt = if n <= 1 {
                    0.5 * (shell.alt_lo_km + shell.alt_hi_km)
                } else {
                    shell.alt_lo_km
                        + (shell.alt_hi_km - shell.alt_lo_km) * i as f64 / (n - 1) as f64
                };
                let mut elements = Elements::circular(alt, shell.inclination_deg, epoch);
                elements.raan_rad = wrap_tau(walker.raan_of(plane) + shell_idx as f64 * 0.61);
                elements.mean_anomaly_rad =
                    wrap_tau(walker.mean_anomaly_of(plane, slot) + i as f64 * 2.399_963);
                sats.push(SatelliteDef {
                    constellation: self.name,
                    sat_id,
                    elements,
                    frequency_mhz: self.dts_frequency_mhz,
                    beacon_interval_s: self.beacon_interval_s,
                });
                sat_id += 1;
            }
        }
        sats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_orbit::sgp4::EARTH_RADIUS_KM;

    fn epoch() -> JulianDate {
        JulianDate::from_calendar(2024, 9, 1, 0, 0, 0.0)
    }

    #[test]
    fn paper_satellite_counts() {
        assert_eq!(tianqi().sat_count(), 22);
        assert_eq!(fossa().sat_count(), 3);
        assert_eq!(pico().sat_count(), 9);
        assert_eq!(cstp().sat_count(), 5);
        let total: u32 = all_constellations().iter().map(|c| c.sat_count()).sum();
        assert_eq!(total, 39); // The paper received beacons from 39 satellites.
    }

    #[test]
    fn frequencies_match_table_3() {
        assert_eq!(tianqi().dts_frequency_mhz, 400.45);
        assert_eq!(fossa().dts_frequency_mhz, 401.7);
        assert_eq!(pico().dts_frequency_mhz, 436.26);
        assert_eq!(cstp().dts_frequency_mhz, 437.985);
        // All in the 400–450 MHz hardware band of the deployed stations.
        for c in all_constellations() {
            assert!((400.0..450.0).contains(&c.dts_frequency_mhz));
        }
    }

    #[test]
    fn catalog_altitudes_stay_in_band() {
        for spec in all_constellations() {
            let sats = spec.catalog(epoch());
            assert_eq!(sats.len(), spec.sat_count() as usize);
            for sat in &sats {
                let alt = sat.elements.altitude_km();
                let ok = spec
                    .shells
                    .iter()
                    .any(|s| alt >= s.alt_lo_km - 1.0 && alt <= s.alt_hi_km + 1.0);
                assert!(ok, "{} sat {} at {alt} km", spec.name, sat.sat_id);
            }
        }
    }

    #[test]
    fn catalog_ids_are_sequential_and_unique() {
        let sats = tianqi().catalog(epoch());
        for (i, sat) in sats.iter().enumerate() {
            assert_eq!(sat.sat_id, i as u32);
        }
    }

    #[test]
    fn all_satellites_propagate() {
        for spec in all_constellations() {
            for sat in spec.catalog(epoch()) {
                let sgp4 = sat.sgp4().expect("LEO elements must initialise");
                let state = sgp4.propagate(137.0).unwrap();
                let r = state.position_km.norm() - EARTH_RADIUS_KM;
                assert!(
                    (400.0..950.0).contains(&r),
                    "{} sat {}: altitude {r}",
                    spec.name,
                    sat.sat_id
                );
            }
        }
    }

    #[test]
    fn tles_round_trip_through_parser() {
        for sat in fossa().catalog(epoch()) {
            let tle = sat.tle().unwrap();
            let (l1, l2) = tle.format_lines();
            let parsed = Tle::parse_lines(&l1, &l2).unwrap();
            assert_eq!(parsed.norad_id, 70_000 + sat.sat_id);
            assert!((parsed.inclination_rad - sat.elements.inclination_rad).abs() < 1e-5);
        }
    }

    #[test]
    fn satellites_are_spatially_spread() {
        // No two satellites of a shell should start at the same place:
        // check pairwise TEME separation at epoch.
        let sats = tianqi().catalog(epoch());
        let states: Vec<_> = sats
            .iter()
            .map(|s| s.sgp4().unwrap().propagate(0.0).unwrap().position_km)
            .collect();
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                let d = (states[i] - states[j]).norm();
                assert!(d > 50.0, "sats {i} and {j} only {d} km apart");
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(constellation_by_name("Tianqi").unwrap().sat_count(), 22);
        assert!(constellation_by_name("Starlink").is_none());
    }

    #[test]
    fn walker_layout_fills_every_plane_exactly() {
        // The 16-sat Tianqi shell must be 4 planes × 4 sats and the
        // 9-sat PICO shell 3 × 3 (the old `clamp(1, 6)` + `div_ceil`
        // layout underfilled the last plane of both).
        let tianqi_shell0: Vec<_> = tianqi()
            .catalog(epoch())
            .into_iter()
            .take(16)
            .map(|s| s.elements.raan_rad)
            .collect();
        let mut raans = tianqi_shell0.clone();
        raans.sort_by(f64::total_cmp);
        raans.dedup();
        assert_eq!(raans.len(), 4, "4 distinct planes");
        for r in &raans {
            let occupancy = tianqi_shell0.iter().filter(|x| *x == r).count();
            assert_eq!(occupancy, 4, "every plane exactly full");
        }
        let pico_raans: Vec<_> = pico()
            .catalog(epoch())
            .into_iter()
            .map(|s| s.elements.raan_rad)
            .collect();
        let mut distinct = pico_raans.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
        for r in &distinct {
            assert_eq!(pico_raans.iter().filter(|x| *x == r).count(), 3);
        }
    }

    /// FNV-1a over each satellite's (sma, inclination, wrapped RAAN,
    /// wrapped mean anomaly) bit patterns: any bitwise layout change
    /// trips this.
    fn fingerprint(sats: &[SatelliteDef]) -> u64 {
        use satiot_orbit::elements::wrap_tau;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for s in sats {
            for v in [
                s.elements.sma_km,
                s.elements.inclination_rad,
                wrap_tau(s.elements.raan_rad),
                wrap_tau(s.elements.mean_anomaly_rad),
            ] {
                for b in v.to_bits().to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        h
    }

    #[test]
    fn published_catalogs_are_pinned_bitwise() {
        // The layout fix may only touch the two shells that were
        // actually uneven (Tianqi's 16-sat shell and PICO's 9): shells
        // whose count already divided into ≤ 6 planes are pinned to
        // their pre-fix fingerprints, captured from the seed revision.
        let tianqi_cat = tianqi().catalog(epoch());
        assert_eq!(fingerprint(&tianqi_cat[16..20]), 0x7e7f05219c5fcacf); // 4-sat shell, unchanged
        assert_eq!(fingerprint(&tianqi_cat[20..22]), 0x33ff9a1a9418e175); // 2-sat shell, unchanged
        assert_eq!(fingerprint(&fossa().catalog(epoch())), 0x7fac185caa54195b); // unchanged
        assert_eq!(fingerprint(&cstp().catalog(epoch())), 0x8668649eeeb85964); // unchanged
                                                                               // The repaired shells, pinned at the fixed layout.
        assert_eq!(fingerprint(&tianqi_cat[..16]), 0x220f012661ec7a4a);
        assert_eq!(fingerprint(&pico().catalog(epoch())), 0x7281073a774abd46);
    }
}

/// Export every constellation's catalog as 3LE text — the file a TinyGS
/// operator would load, and a fixture for interoperating with external
/// SGP4 tooling.
pub fn export_full_catalog(epoch: JulianDate) -> String {
    let mut tles = Vec::new();
    for spec in all_constellations() {
        for sat in spec.catalog(epoch) {
            let tle = sat.tle().unwrap_or_else(|e| {
                panic!(
                    "catalog TLE for {}-{} failed to format: {e}",
                    sat.constellation, sat.sat_id
                )
            });
            tles.push(tle);
        }
    }
    satiot_orbit::tle::format_catalog(&tles)
}

#[cfg(test)]
mod export_tests {
    use super::*;

    #[test]
    fn full_catalog_exports_39_satellites_and_reparses() {
        let epoch = JulianDate::from_calendar(2024, 9, 1, 0, 0, 0.0);
        let text = export_full_catalog(epoch);
        let (tles, errors) = satiot_orbit::tle::parse_catalog(&text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(tles.len(), 39);
        // Every reparsed set propagates.
        for t in &tles {
            let sgp4 = Sgp4::new(t).expect("near-earth");
            assert!(sgp4.propagate(100.0).is_ok());
        }
        // Names carry the constellation labels.
        assert!(tles.iter().any(|t| t.name.as_deref() == Some("Tianqi-0")));
        assert!(tles.iter().any(|t| t.name.as_deref() == Some("FOSSA-2")));
    }
}
