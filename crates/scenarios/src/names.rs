//! "Did you mean …" helpers for named-catalog lookups.
//!
//! The catalogs are tiny (8 site codes, 4 constellation labels), so an
//! exact Levenshtein scan is cheap; suggestions feed the typed
//! `InvalidName`/`UnknownName` rejection paths so a sweep queue or
//! scenario file failing on a typo names the fix.

/// Case-insensitive Levenshtein distance between two ASCII-ish names.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().map(|c| c.to_ascii_lowercase()).collect();
    let b: Vec<char> = b.chars().map(|c| c.to_ascii_lowercase()).collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate closest to `name`, if it is close enough to plausibly
/// be a typo (distance ≤ 2, and strictly less than the name's own
/// length so short codes don't match everything). Ties break on
/// catalog order, keeping the suggestion deterministic.
pub(crate) fn closest<'a, I>(name: &str, candidates: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut best: Option<(&'a str, usize)> = None;
    for cand in candidates {
        let d = edit_distance(name, cand);
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((cand, d));
        }
    }
    let (cand, d) = best?;
    (d <= 2 && d < name.chars().count().max(1)).then_some(cand)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(edit_distance("HK", "HK"), 0);
        assert_eq!(edit_distance("hk", "HK"), 0); // case-insensitive
        assert_eq!(edit_distance("Tianqi", "Tianqy"), 1);
        assert_eq!(edit_distance("", "SYD"), 3);
    }

    #[test]
    fn closest_suggests_typos_but_not_noise() {
        let codes = ["PGH", "LDN", "SH", "GZ", "SYD", "HK", "NC", "YC"];
        assert_eq!(closest("SYDD", codes), Some("SYD"));
        assert_eq!(closest("ldn", codes), Some("LDN"));
        // A 2-char garbage code is distance ≥ 2 from everything and its
        // own length gate rejects the match.
        assert_eq!(closest("QQ", codes), None);
        assert_eq!(
            closest("Starlink", ["Tianqi", "FOSSA", "PICO", "CSTP"]),
            None
        );
        assert_eq!(closest("tianqy", ["Tianqi", "FOSSA"]), Some("Tianqi"));
    }
}
