//! Piecewise waypoint mobility tracks for moving ground nodes
//! (maritime/asset trackers).
//!
//! A [`MobilityTrack`] is a list of timestamped waypoints; between
//! waypoints the node follows the great circle connecting them at
//! constant angular rate, with altitude interpolated linearly. Before
//! the first waypoint and after the last one the node holds station.
//!
//! Pass prediction cannot use a single fixed observer for a moving
//! node, so [`MobilityTrack::legs`] discretises the track into
//! [`ObserverLeg`]s — short windows during which the observer is pinned
//! at the leg-midpoint position — which
//! [`PassPredictor::passes_over_legs`](satiot_orbit::pass::PassPredictor::passes_over_legs)
//! scans one by one. The discretisation is deterministic (pure
//! arithmetic on the waypoint table), so campaigns over mobile sites
//! stay bit-identical across drivers.

use crate::spec::ScenarioError;
use satiot_orbit::frames::Geodetic;
use satiot_orbit::pass::ObserverLeg;
use satiot_orbit::time::JulianDate;

/// One timestamped position of a mobility track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waypoint {
    /// Seconds since the site's campaign start.
    pub t_s: f64,
    /// Geodetic latitude, degrees.
    pub lat_deg: f64,
    /// Longitude, degrees.
    pub lon_deg: f64,
    /// Altitude above the ellipsoid, km.
    pub alt_km: f64,
}

impl Waypoint {
    /// The waypoint's position as a [`Geodetic`].
    pub fn geodetic(&self) -> Geodetic {
        Geodetic::from_degrees(self.lat_deg, self.lon_deg, self.alt_km)
    }
}

/// A piecewise great-circle waypoint track.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityTrack {
    /// Waypoints in strictly increasing time order (≥ 2).
    pub waypoints: Vec<Waypoint>,
}

/// Default leg length for [`MobilityTrack::legs`], seconds. A ship at
/// 20 kn moves ~6 km in 10 minutes — well under the slant-range scale
/// of a LEO pass, so pinning the observer per leg stays a good
/// approximation while keeping leg counts (and pass-scan overhead)
/// modest over multi-day campaigns.
pub const DEFAULT_LEG_S: f64 = 600.0;

impl MobilityTrack {
    /// Validate the track: at least two waypoints, strictly monotone
    /// timestamps, finite coordinates, latitudes inside [−90°, 90°].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.waypoints.len() < 2 {
            return Err(ScenarioError::invalid(
                "track.waypoints",
                "needs at least 2 waypoints",
            ));
        }
        for (i, w) in self.waypoints.iter().enumerate() {
            for (what, v) in [
                ("t_s", w.t_s),
                ("lat_deg", w.lat_deg),
                ("lon_deg", w.lon_deg),
                ("alt_km", w.alt_km),
            ] {
                if !v.is_finite() {
                    return Err(ScenarioError::invalid(
                        &format!("track.waypoints[{i}].{what}"),
                        "must be finite",
                    ));
                }
            }
            if !(-90.0..=90.0).contains(&w.lat_deg) {
                return Err(ScenarioError::invalid(
                    &format!("track.waypoints[{i}].lat_deg"),
                    "must be in [-90, 90]",
                ));
            }
        }
        for (i, pair) in self.waypoints.windows(2).enumerate() {
            if pair[1].t_s <= pair[0].t_s {
                return Err(ScenarioError::invalid(
                    &format!("track.waypoints[{}].t_s", i + 1),
                    "timestamps must be strictly increasing",
                ));
            }
        }
        Ok(())
    }

    /// Position at `t_s` seconds since campaign start: great-circle
    /// interpolation between the bracketing waypoints, clamped to the
    /// endpoints outside the track's time span.
    pub fn position_at(&self, t_s: f64) -> Geodetic {
        let first = &self.waypoints[0];
        if t_s <= first.t_s {
            return first.geodetic();
        }
        let last = &self.waypoints[self.waypoints.len() - 1];
        if t_s >= last.t_s {
            return last.geodetic();
        }
        // The bracketing segment (validate() guarantees monotone t_s).
        let seg = self
            .waypoints
            .windows(2)
            .find(|pair| t_s < pair[1].t_s)
            .expect("t_s < last.t_s, so a bracketing segment exists");
        let (a, b) = (&seg[0], &seg[1]);
        let f = (t_s - a.t_s) / (b.t_s - a.t_s);
        great_circle_point(a, b, f)
    }

    /// Total track duration, seconds (first to last waypoint).
    pub fn duration_s(&self) -> f64 {
        self.waypoints[self.waypoints.len() - 1].t_s - self.waypoints[0].t_s
    }

    /// Discretise the span `[start_s, end_s]` (seconds relative to
    /// `epoch`) into contiguous [`ObserverLeg`]s of at most `max_leg_s`
    /// seconds, each pinned at the leg's midpoint position. Segment
    /// boundaries (waypoints) always start a new leg, so a leg never
    /// spans a course change.
    pub fn legs(
        &self,
        epoch: JulianDate,
        start_s: f64,
        end_s: f64,
        max_leg_s: f64,
    ) -> Vec<ObserverLeg> {
        let mut out = Vec::new();
        // NaN-safe: a NaN span or leg cap must fall through to the
        // empty return, so test the positive condition and negate.
        let well_formed = end_s > start_s && max_leg_s > 0.0;
        if !well_formed {
            return out;
        }
        // Cut points: the span endpoints plus every waypoint inside it.
        let mut cuts = vec![start_s];
        for w in &self.waypoints {
            if w.t_s > start_s && w.t_s < end_s {
                cuts.push(w.t_s);
            }
        }
        cuts.push(end_s);
        for pair in cuts.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let n = ((hi - lo) / max_leg_s).ceil().max(1.0) as usize;
            let step = (hi - lo) / n as f64;
            for k in 0..n {
                let a = lo + k as f64 * step;
                let b = if k + 1 == n {
                    hi
                } else {
                    lo + (k + 1) as f64 * step
                };
                out.push(ObserverLeg {
                    start: epoch.plus_seconds(a),
                    end: epoch.plus_seconds(b),
                    position: self.position_at(0.5 * (a + b)),
                });
            }
        }
        out
    }
}

/// The point a fraction `f ∈ [0, 1]` along the great circle from `a`
/// to `b`, altitude interpolated linearly.
fn great_circle_point(a: &Waypoint, b: &Waypoint, f: f64) -> Geodetic {
    let va = unit_vector(a.lat_deg.to_radians(), a.lon_deg.to_radians());
    let vb = unit_vector(b.lat_deg.to_radians(), b.lon_deg.to_radians());
    let dot = (va[0] * vb[0] + va[1] * vb[1] + va[2] * vb[2]).clamp(-1.0, 1.0);
    let omega = dot.acos();
    let v = if omega < 1e-9 {
        // Coincident (or numerically so): linear blend then renormalise.
        [
            va[0] + f * (vb[0] - va[0]),
            va[1] + f * (vb[1] - va[1]),
            va[2] + f * (vb[2] - va[2]),
        ]
    } else {
        // Spherical linear interpolation at constant angular rate.
        let (wa, wb) = (
            ((1.0 - f) * omega).sin() / omega.sin(),
            (f * omega).sin() / omega.sin(),
        );
        [
            wa * va[0] + wb * vb[0],
            wa * va[1] + wb * vb[1],
            wa * va[2] + wb * vb[2],
        ]
    };
    let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    let lat = (v[2] / norm).asin();
    let lon = v[1].atan2(v[0]);
    Geodetic::new(lat, lon, a.alt_km + f * (b.alt_km - a.alt_km))
}

fn unit_vector(lat_rad: f64, lon_rad: f64) -> [f64; 3] {
    [
        lat_rad.cos() * lon_rad.cos(),
        lat_rad.cos() * lon_rad.sin(),
        lat_rad.sin(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hk_to_manila() -> MobilityTrack {
        MobilityTrack {
            waypoints: vec![
                Waypoint {
                    t_s: 0.0,
                    lat_deg: 22.3,
                    lon_deg: 114.2,
                    alt_km: 0.0,
                },
                Waypoint {
                    t_s: 86_400.0,
                    lat_deg: 14.6,
                    lon_deg: 121.0,
                    alt_km: 0.0,
                },
            ],
        }
    }

    #[test]
    fn endpoints_and_clamping() {
        let track = hk_to_manila();
        track.validate().expect("valid track");
        let start = track.position_at(-100.0);
        assert!((start.lat_rad.to_degrees() - 22.3).abs() < 1e-9);
        let end = track.position_at(1e9);
        assert!((end.lat_rad.to_degrees() - 14.6).abs() < 1e-9);
        assert_eq!(track.duration_s(), 86_400.0);
    }

    #[test]
    fn midpoint_lies_between_on_the_great_circle() {
        let track = hk_to_manila();
        let mid = track.position_at(43_200.0);
        let lat = mid.lat_rad.to_degrees();
        let lon = mid.lon_rad.to_degrees();
        assert!((14.6..22.3).contains(&lat), "lat {lat}");
        assert!((114.2..121.0).contains(&lon), "lon {lon}");
        // Interpolation is exact at waypoints.
        let at_wp = track.position_at(86_400.0);
        assert!((at_wp.lon_rad.to_degrees() - 121.0).abs() < 1e-9);
    }

    #[test]
    fn antimeridian_crossing_is_continuous() {
        let track = MobilityTrack {
            waypoints: vec![
                Waypoint {
                    t_s: 0.0,
                    lat_deg: 0.0,
                    lon_deg: 179.0,
                    alt_km: 0.0,
                },
                Waypoint {
                    t_s: 3600.0,
                    lat_deg: 0.0,
                    lon_deg: -179.0,
                    alt_km: 0.0,
                },
            ],
        };
        // The short way across the antimeridian, not the long way
        // around: the midpoint sits at ±180°, not 0°.
        let mid = track.position_at(1800.0);
        assert!(mid.lon_rad.to_degrees().abs() > 179.0);
    }

    #[test]
    fn validation_rejects_bad_tracks() {
        let single = MobilityTrack {
            waypoints: vec![hk_to_manila().waypoints[0]],
        };
        assert!(single.validate().is_err());
        let mut backwards = hk_to_manila();
        backwards.waypoints[1].t_s = -5.0;
        assert!(backwards.validate().is_err());
        let mut nan = hk_to_manila();
        nan.waypoints[0].lat_deg = f64::NAN;
        assert!(nan.validate().is_err());
        let mut polar = hk_to_manila();
        polar.waypoints[0].lat_deg = 91.0;
        assert!(polar.validate().is_err());
    }

    #[test]
    fn legs_tile_the_span_and_respect_waypoints() {
        let track = hk_to_manila();
        let epoch = JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0);
        let legs = track.legs(epoch, 0.0, 172_800.0, 3600.0);
        assert!(!legs.is_empty());
        // Contiguous tiling from start to end.
        assert_eq!(legs[0].start.0.to_bits(), epoch.0.to_bits());
        for pair in legs.windows(2) {
            assert_eq!(pair[0].end.0.to_bits(), pair[1].start.0.to_bits());
        }
        let last = legs[legs.len() - 1];
        // Julian-date round-trips cost ~5e-5 s per conversion at this
        // epoch; compare at the millisecond scale.
        assert!((last.end.seconds_since(epoch) - 172_800.0).abs() < 1e-3);
        // No leg exceeds the cap (modulo rounding) and every leg after
        // the final waypoint holds the terminal position.
        for leg in &legs {
            assert!(leg.end.seconds_since(leg.start) <= 3600.0 + 1e-3);
        }
        let parked = legs
            .iter()
            .filter(|l| l.start.seconds_since(epoch) >= 86_400.0)
            .collect::<Vec<_>>();
        assert!(!parked.is_empty());
        for leg in parked {
            assert!((leg.position.lat_rad.to_degrees() - 14.6).abs() < 1e-9);
        }
    }
}
