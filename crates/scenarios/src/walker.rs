//! Parameterised Walker-delta shell generator and closed-form
//! availability predictions for mega-constellation scale-out.
//!
//! The paper's catalogs ([`crate::constellations`]) are 39 fixed
//! satellites; scaling its availability/cost questions to modern
//! constellation shapes needs arbitrary `N planes × M sats/plane`
//! shells. [`WalkerShell`] is the standard Walker-delta parameterisation
//! `i: T/P/F` (total `T = N·M`, `P = N` planes, inter-plane phasing
//! factor `F`):
//!
//! * plane `p` of satellite `k` is `k / M`, slot `s` is `k % M`;
//! * RAAN(p) = `p/N · 2π`;
//! * mean anomaly(p, s) = `s/M · 2π + p/N · F·2π/M`.
//!
//! The published 39-sat catalogs are generated through these exact
//! expressions (see `ConstellationSpec::catalog`), so the layout logic
//! exists in one place.
//!
//! [`WalkerConstellation`] stacks shells into a loadable scenario with a
//! hand-rolled JSON codec ([`WalkerConstellation::from_json`] /
//! [`to_json`](WalkerConstellation::to_json) — the build environment
//! vendors no serde, so the subset grammar lives here).
//!
//! ## Closed-form availability (stochastic geometry)
//!
//! For a single circular-orbit satellite at inclination `i` observed
//! from geodetic latitude `φ_o` with visibility-cone half-angle `λ`
//! (from [`footprint_half_angle_rad`]), the long-run visible-time
//! fraction follows from averaging over the uniformly distributed
//! argument of latitude `u` and relative longitude (Earth rotation plus
//! nodal precession make the longitude offset ergodic):
//!
//! * satellite latitude: `φ_s(u) = asin(sin i · sin u)`;
//! * max longitude offset still inside the cone:
//!   `Δ_max = acos((cos λ − sin φ_o sin φ_s) / (cos φ_o cos φ_s))`
//!   (clamped: 0 when the cone cannot be reached at that `u`, π when
//!   every longitude is inside);
//! * `p_vis = E_u[Δ_max / π]`.
//!
//! For `n` satellites of a shell, phases decorrelate over time, so the
//! union availability is `1 − (1 − p_vis)^n`. The `exp_megascale`
//! binary validates simulated mega-shell statistics against these
//! predictions, giving a second ground truth independent of the paper's
//! measured bands.

use crate::constellations::SatelliteDef;
use crate::json::{escape_json, JsonError, JsonParser, JsonValue};
use satiot_orbit::elements::{footprint_half_angle_rad, wrap_tau, Elements};
use satiot_orbit::time::JulianDate;

use core::f64::consts::{PI, TAU};
use core::fmt;

/// One Walker-delta shell: `planes × sats_per_plane` satellites at a
/// common altitude and inclination with phasing factor `phasing`
/// (Walker's `F`, in `0..sats_per_plane`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerShell {
    /// Number of orbital planes (`P`).
    pub planes: u32,
    /// Satellites per plane (`T / P`).
    pub sats_per_plane: u32,
    /// Circular-orbit altitude, km.
    pub altitude_km: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Inter-plane phasing factor (`F`, in `0..planes`): adjacent
    /// planes are offset by `F · 360° / T` in mean anomaly.
    pub phasing: u32,
}

impl WalkerShell {
    /// Total satellites in the shell.
    pub fn count(&self) -> u32 {
        self.planes * self.sats_per_plane
    }

    /// (plane, in-plane slot) of satellite `index` in `0..count()`.
    pub fn plane_slot(&self, index: u32) -> (u32, u32) {
        (index / self.sats_per_plane, index % self.sats_per_plane)
    }

    /// RAAN of `plane`, radians in `[0, 2π)` by construction.
    ///
    /// The expression shape (`p/N · τ`) is load-bearing: the published
    /// 39-sat catalogs are regenerated through it and pinned bitwise.
    pub fn raan_of(&self, plane: u32) -> f64 {
        (plane as f64 / self.planes as f64) * TAU
    }

    /// Mean anomaly of (`plane`, `slot`), radians — may exceed `2π`
    /// before normalisation (callers wrap with [`wrap_tau`]).
    pub fn mean_anomaly_of(&self, plane: u32, slot: u32) -> f64 {
        (slot as f64 / self.sats_per_plane as f64) * TAU
            + (plane as f64 / self.planes as f64)
                * (self.phasing as f64 * TAU / self.sats_per_plane as f64)
    }

    /// Validate the parameterisation.
    pub fn validate(&self) -> Result<(), WalkerParseError> {
        if self.planes == 0 || self.sats_per_plane == 0 {
            return Err(WalkerParseError(format!(
                "walker shell needs at least 1 plane and 1 sat/plane, got {}x{}",
                self.planes, self.sats_per_plane
            )));
        }
        if self.phasing >= self.planes {
            return Err(WalkerParseError(format!(
                "walker phasing F={} must be < planes={}",
                self.phasing, self.planes
            )));
        }
        if !(100.0..5000.0).contains(&self.altitude_km) {
            return Err(WalkerParseError(format!(
                "walker altitude {} km outside the LEO range this toolkit models",
                self.altitude_km
            )));
        }
        if !(0.0..=180.0).contains(&self.inclination_deg) {
            return Err(WalkerParseError(format!(
                "walker inclination {}° outside [0, 180]",
                self.inclination_deg
            )));
        }
        Ok(())
    }

    /// Mean elements for every satellite of the shell at `epoch`,
    /// angles normalised into `[0, 2π)`.
    pub fn elements(&self, epoch: JulianDate) -> Vec<Elements> {
        (0..self.count())
            .map(|k| {
                let (plane, slot) = self.plane_slot(k);
                let mut e = Elements::circular(self.altitude_km, self.inclination_deg, epoch);
                e.raan_rad = wrap_tau(self.raan_of(plane));
                e.mean_anomaly_rad = wrap_tau(self.mean_anomaly_of(plane, slot));
                e
            })
            .collect()
    }
}

/// A named stack of Walker shells, loadable from JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerConstellation {
    /// Constellation label (becomes the `SatelliteDef::constellation`
    /// tag, interned).
    pub name: String,
    /// Orbital shells, concatenated in order for satellite IDs.
    pub shells: Vec<WalkerShell>,
    /// DtS beacon/downlink frequency, MHz.
    pub frequency_mhz: f64,
    /// Beacon broadcast period, seconds.
    pub beacon_interval_s: f64,
}

impl WalkerConstellation {
    /// Total satellite count across shells.
    pub fn sat_count(&self) -> u32 {
        self.shells.iter().map(|s| s.count()).sum()
    }

    /// Validate every shell and the top-level fields.
    pub fn validate(&self) -> Result<(), WalkerParseError> {
        if self.name.is_empty() {
            return Err(WalkerParseError("walker constellation needs a name".into()));
        }
        if !(self.frequency_mhz.is_finite() && self.frequency_mhz > 0.0) {
            return Err(WalkerParseError(format!(
                "bad frequency_mhz {}",
                self.frequency_mhz
            )));
        }
        if !(self.beacon_interval_s.is_finite() && self.beacon_interval_s > 0.0) {
            return Err(WalkerParseError(format!(
                "bad beacon_interval_s {}",
                self.beacon_interval_s
            )));
        }
        for shell in &self.shells {
            shell.validate()?;
        }
        Ok(())
    }

    /// Generate the satellite catalog at `epoch`: shells concatenated,
    /// IDs sequential from 0.
    pub fn catalog(&self, epoch: JulianDate) -> Vec<SatelliteDef> {
        let name = intern_name(&self.name);
        let mut sats = Vec::with_capacity(self.sat_count() as usize);
        let mut sat_id = 0u32;
        for shell in &self.shells {
            for elements in shell.elements(epoch) {
                sats.push(SatelliteDef {
                    constellation: name,
                    sat_id,
                    elements,
                    frequency_mhz: self.frequency_mhz,
                    beacon_interval_s: self.beacon_interval_s,
                });
                sat_id += 1;
            }
        }
        sats
    }

    /// Serialise to the JSON schema [`from_json`](Self::from_json)
    /// accepts.
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"name\": \"{}\",", escape_json(&self.name));
        let _ = writeln!(out, "  \"frequency_mhz\": {},", self.frequency_mhz);
        let _ = writeln!(out, "  \"beacon_interval_s\": {},", self.beacon_interval_s);
        let _ = writeln!(out, "  \"shells\": [");
        for (i, s) in self.shells.iter().enumerate() {
            let comma = if i + 1 < self.shells.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"planes\": {}, \"sats_per_plane\": {}, \"altitude_km\": {}, \
                 \"inclination_deg\": {}, \"phasing\": {}}}{comma}",
                s.planes, s.sats_per_plane, s.altitude_km, s.inclination_deg, s.phasing
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }

    /// Parse a constellation from JSON text and validate it.
    ///
    /// Accepts the subset grammar [`to_json`](Self::to_json) emits
    /// (objects, arrays, numbers, strings; whitespace-insensitive;
    /// unknown keys rejected so typos fail loudly).
    pub fn from_json(text: &str) -> Result<WalkerConstellation, WalkerParseError> {
        let value = JsonParser::new(text).parse_document()?;
        Self::from_value(&value)
    }

    /// Parse a constellation from an already-parsed JSON value (the
    /// scenario spec embeds walker objects inline).
    pub(crate) fn from_value(value: &JsonValue) -> Result<WalkerConstellation, WalkerParseError> {
        let obj = value.as_object("constellation")?;
        let mut name = None;
        let mut frequency_mhz = None;
        let mut beacon_interval_s = None;
        let mut shells = None;
        for (key, val) in obj {
            match key.as_str() {
                "name" => name = Some(val.as_string("name")?),
                "frequency_mhz" => frequency_mhz = Some(val.as_number("frequency_mhz")?),
                "beacon_interval_s" => {
                    beacon_interval_s = Some(val.as_number("beacon_interval_s")?)
                }
                "shells" => {
                    let arr = val.as_array("shells")?;
                    let mut parsed = Vec::with_capacity(arr.len());
                    for item in arr {
                        parsed.push(parse_shell(item)?);
                    }
                    shells = Some(parsed);
                }
                other => {
                    return Err(WalkerParseError(format!(
                        "unknown constellation key {other:?}"
                    )))
                }
            }
        }
        let c = WalkerConstellation {
            name: name.ok_or_else(|| WalkerParseError("missing \"name\"".into()))?,
            shells: shells.ok_or_else(|| WalkerParseError("missing \"shells\"".into()))?,
            frequency_mhz: frequency_mhz
                .ok_or_else(|| WalkerParseError("missing \"frequency_mhz\"".into()))?,
            beacon_interval_s: beacon_interval_s
                .ok_or_else(|| WalkerParseError("missing \"beacon_interval_s\"".into()))?,
        };
        c.validate()?;
        Ok(c)
    }
}

fn parse_shell(value: &JsonValue) -> Result<WalkerShell, WalkerParseError> {
    let obj = value.as_object("shell")?;
    let mut planes = None;
    let mut sats_per_plane = None;
    let mut altitude_km = None;
    let mut inclination_deg = None;
    let mut phasing = None;
    for (key, val) in obj {
        match key.as_str() {
            "planes" => planes = Some(val.as_u32("planes")?),
            "sats_per_plane" => sats_per_plane = Some(val.as_u32("sats_per_plane")?),
            "altitude_km" => altitude_km = Some(val.as_number("altitude_km")?),
            "inclination_deg" => inclination_deg = Some(val.as_number("inclination_deg")?),
            "phasing" => phasing = Some(val.as_u32("phasing")?),
            other => return Err(WalkerParseError(format!("unknown shell key {other:?}"))),
        }
    }
    let missing = |k: &str| WalkerParseError(format!("shell missing {k:?}"));
    Ok(WalkerShell {
        planes: planes.ok_or_else(|| missing("planes"))?,
        sats_per_plane: sats_per_plane.ok_or_else(|| missing("sats_per_plane"))?,
        altitude_km: altitude_km.ok_or_else(|| missing("altitude_km"))?,
        inclination_deg: inclination_deg.ok_or_else(|| missing("inclination_deg"))?,
        phasing: phasing.ok_or_else(|| missing("phasing"))?,
    })
}

/// Error from [`WalkerConstellation::from_json`] or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkerParseError(pub String);

impl fmt::Display for WalkerParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "walker scenario: {}", self.0)
    }
}

impl std::error::Error for WalkerParseError {}

impl From<JsonError> for WalkerParseError {
    fn from(e: JsonError) -> Self {
        WalkerParseError(e.0)
    }
}

// ---------------------------------------------------------------------
// Name interning: `SatelliteDef::constellation` is `&'static str` (the
// paper catalogs use literals); generated constellations leak each
// distinct name exactly once.

pub(crate) fn intern_name(name: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static REGISTRY: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut reg = REGISTRY
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(existing) = reg.iter().find(|s| **s == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    reg.push(leaked);
    leaked
}

// ---------------------------------------------------------------------
// Closed-form stochastic-geometry availability.

/// Max longitude offset (radians, in `[0, π]`) at which a satellite at
/// geocentric latitude `sat_lat_rad` is still within Earth-central
/// angle `cone_rad` of a site at latitude `site_lat_rad`.
pub fn theta_max(site_lat_rad: f64, sat_lat_rad: f64, cone_rad: f64) -> f64 {
    let (so, co) = (site_lat_rad.sin(), site_lat_rad.cos());
    let (ss, cs) = (sat_lat_rad.sin(), sat_lat_rad.cos());
    let denom = co * cs;
    if denom.abs() < 1e-12 {
        // A pole: the central angle is |φ_o − φ_s| regardless of
        // longitude — inside the cone at every offset or at none.
        return if (site_lat_rad - sat_lat_rad).abs() <= cone_rad {
            PI
        } else {
            0.0
        };
    }
    let c = (cone_rad.cos() - so * ss) / denom;
    if c >= 1.0 {
        0.0
    } else if c <= -1.0 {
        PI
    } else {
        c.acos()
    }
}

/// Long-run fraction of time a single satellite of a circular orbit at
/// `alt_km` / `incl_rad` is visible above `mask_rad` from a site at
/// latitude `site_lat_rad` (closed form, midpoint-sampled over the
/// argument of latitude).
///
/// Exactly `0.0` when the site lies outside the shell's reachable
/// latitude band — every sample contributes a hard zero — which
/// `exp_megascale` uses to cross-check the latitude-band cull.
pub fn single_sat_visibility_fraction(
    site_lat_rad: f64,
    incl_rad: f64,
    alt_km: f64,
    mask_rad: f64,
) -> f64 {
    let lam = footprint_half_angle_rad(alt_km, mask_rad);
    const SAMPLES: usize = 2048;
    let mut acc = 0.0;
    for k in 0..SAMPLES {
        let u = (k as f64 + 0.5) / SAMPLES as f64 * TAU;
        let sat_lat = (incl_rad.sin() * u.sin()).asin();
        acc += theta_max(site_lat_rad, sat_lat, lam) / PI;
    }
    acc / SAMPLES as f64
}

/// Availability of the union of `n` satellites with independent phases,
/// each individually visible a fraction `p` of the time.
pub fn union_availability(p: f64, n: u32) -> f64 {
    1.0 - (1.0 - p.clamp(0.0, 1.0)).powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch() -> JulianDate {
        JulianDate::from_calendar(2025, 3, 1, 0, 0, 0.0)
    }

    fn mega() -> WalkerConstellation {
        WalkerConstellation {
            name: "Mega".into(),
            shells: vec![
                WalkerShell {
                    planes: 10,
                    sats_per_plane: 36,
                    altitude_km: 600.0,
                    inclination_deg: 53.0,
                    phasing: 1,
                },
                WalkerShell {
                    planes: 3,
                    sats_per_plane: 5,
                    altitude_km: 780.0,
                    inclination_deg: 97.6,
                    phasing: 2,
                },
            ],
            frequency_mhz: 401.2,
            beacon_interval_s: 60.0,
        }
    }

    #[test]
    fn layout_is_uniform_for_arbitrary_nxm() {
        let shell = WalkerShell {
            planes: 7,
            sats_per_plane: 11,
            altitude_km: 550.0,
            inclination_deg: 53.0,
            phasing: 3,
        };
        assert_eq!(shell.count(), 77);
        let els = shell.elements(epoch());
        assert_eq!(els.len(), 77);
        // Every plane holds exactly sats_per_plane satellites with
        // identical RAAN and uniform in-plane spacing.
        for p in 0..shell.planes {
            let plane: Vec<_> = (0..shell.count())
                .filter(|&k| shell.plane_slot(k).0 == p)
                .collect();
            assert_eq!(plane.len(), 11);
            let raan = els[plane[0] as usize].raan_rad;
            for pair in plane.windows(2) {
                assert_eq!(els[pair[0] as usize].raan_rad, raan);
                let gap = wrap_tau(
                    els[pair[1] as usize].mean_anomaly_rad - els[pair[0] as usize].mean_anomaly_rad,
                );
                assert!((gap - TAU / 11.0).abs() < 1e-12, "gap {gap}");
            }
        }
        // All angles normalised.
        for e in &els {
            assert!((0.0..TAU).contains(&e.raan_rad));
            assert!((0.0..TAU).contains(&e.mean_anomaly_rad));
        }
    }

    #[test]
    fn json_round_trip() {
        let c = mega();
        let parsed = WalkerConstellation::from_json(&c.to_json()).expect("round trip");
        assert_eq!(parsed, c);
        assert_eq!(parsed.sat_count(), 375);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(WalkerConstellation::from_json("").is_err());
        assert!(WalkerConstellation::from_json("{}").is_err());
        assert!(WalkerConstellation::from_json("{\"name\": \"x\"").is_err());
        // Unknown keys fail loudly.
        let mut json = mega().to_json();
        json = json.replace("\"frequency_mhz\"", "\"frequency_mzh\"");
        assert!(WalkerConstellation::from_json(&json).is_err());
        // Invalid phasing is caught by validation.
        let bad = WalkerConstellation {
            shells: vec![WalkerShell {
                planes: 2,
                sats_per_plane: 3,
                altitude_km: 550.0,
                inclination_deg: 53.0,
                phasing: 3,
            }],
            ..mega()
        };
        assert!(WalkerConstellation::from_json(&bad.to_json()).is_err());
    }

    #[test]
    fn catalog_ids_sequential_and_interned_name_stable() {
        let c = mega();
        let sats = c.catalog(epoch());
        assert_eq!(sats.len(), 375);
        for (i, s) in sats.iter().enumerate() {
            assert_eq!(s.sat_id, i as u32);
            assert_eq!(s.constellation, "Mega");
        }
        // A second catalog reuses the same interned pointer.
        let again = c.catalog(epoch());
        assert!(core::ptr::eq(sats[0].constellation, again[0].constellation));
    }

    #[test]
    fn visibility_fraction_zero_outside_band() {
        // 53° shell at 600 km, mask 0: band ends near 53° + 22° = 75°.
        let p = single_sat_visibility_fraction(
            85.0_f64.to_radians(),
            53.0_f64.to_radians(),
            600.0,
            0.0,
        );
        assert_eq!(p, 0.0);
        // And hemisphere-symmetric.
        let n = single_sat_visibility_fraction(
            40.0_f64.to_radians(),
            53.0_f64.to_radians(),
            600.0,
            0.0,
        );
        let s = single_sat_visibility_fraction(
            -40.0_f64.to_radians(),
            53.0_f64.to_radians(),
            600.0,
            0.0,
        );
        assert!((n - s).abs() < 1e-12);
        assert!(n > 0.0);
    }

    #[test]
    fn visibility_fraction_normalises_over_the_sphere() {
        // Averaged over sites uniform on the sphere, the visible
        // fraction must equal the footprint's share of the sphere,
        // (1 − cos λ) / 2, independent of inclination.
        let (alt, mask) = (600.0, 10.0_f64.to_radians());
        let lam = footprint_half_angle_rad(alt, mask);
        let expected = 0.5 * (1.0 - lam.cos());
        for incl_deg in [30.0, 53.0, 97.6] {
            let incl = (incl_deg as f64).to_radians();
            const N: usize = 400;
            let mut acc = 0.0;
            for k in 0..N {
                // cos-weighted latitude sampling = uniform on sphere.
                let z = -1.0 + 2.0 * (k as f64 + 0.5) / N as f64;
                acc += single_sat_visibility_fraction(z.asin(), incl, alt, mask);
            }
            let mean = acc / N as f64;
            assert!(
                (mean - expected).abs() / expected < 0.02,
                "i={incl_deg}: mean {mean} vs expected {expected}"
            );
        }
    }

    #[test]
    fn union_availability_limits() {
        assert_eq!(union_availability(0.0, 100), 0.0);
        assert_eq!(union_availability(1.0, 1), 1.0);
        let p = 0.05;
        let u = union_availability(p, 60);
        assert!(u > 0.9 && u < 1.0);
        // Monotone in n.
        assert!(union_availability(p, 61) > u);
    }
}
