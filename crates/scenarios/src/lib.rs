//! # satiot-scenarios
//!
//! The concrete deployments the reproduced paper measured, rebuilt as
//! data: constellation catalogs matching Table 3 (satellite counts,
//! altitude bands, inclinations, DtS frequencies), the eight measurement
//! sites of Table 1 (station counts, start months, climates), Tianqi's
//! 12 Chinese ground stations, and the Yunnan coffee-plantation site of
//! the active deployment.
//!
//! Everything here is deterministic data — no RNG — so the same catalog
//! is generated on every run.

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod constellations;
pub mod json;
pub mod mobility;
mod names;
pub mod sites;
pub mod spec;
pub mod walker;

pub use constellations::{
    all_constellations, constellation_by_name, constellation_suggestion, ConstellationSpec,
    SatelliteDef, Shell,
};
pub use mobility::{MobilityTrack, Waypoint};
pub use sites::{
    campaign_end, campaign_epoch, hong_kong_server, measurement_sites, site_by_code,
    site_code_suggestion, tianqi_ground_stations, yunnan_farm, Climate, Site,
};
pub use spec::{
    ConstellationRef, OutageWindow, ResolvedScenario, ResolvedSite, ScenarioError, ScenarioSpec,
    SchedulerSpec, SiteRef, SiteSpec, TerrestrialSpec, TrafficSpec,
};
pub use walker::{
    single_sat_visibility_fraction, union_availability, WalkerConstellation, WalkerParseError,
    WalkerShell,
};
