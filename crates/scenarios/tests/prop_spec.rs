//! Property coverage for the scenario spec: any valid spec — mobility
//! tracks, outage windows, inline sites, the lot — must survive
//! spec → JSON → spec bitwise, with a stable fingerprint and idempotent
//! canonical emission.
//!
//! Rust's shortest-round-trip float formatting is the load-bearing
//! detail: `to_json` emits every `f64` via `Display`, so the parsed
//! spec compares bit-equal, not approximately.

use proptest::prelude::*;
use satiot_scenarios::sites::Climate;
use satiot_scenarios::{
    ConstellationRef, MobilityTrack, OutageWindow, ScenarioSpec, SchedulerSpec, SiteRef, SiteSpec,
    TrafficSpec, Waypoint,
};

const CLIMATES: [Climate; 4] = [
    Climate::Subtropical,
    Climate::Maritime,
    Climate::ContinentalDry,
    Climate::TemperateOceanic,
];

/// Deterministically assemble a valid spec from scalar draws. `pick`
/// toggles every optional section so the round-trip sees each emission
/// branch, alone and combined.
#[allow(clippy::too_many_arguments)]
fn assemble(
    pick: u32,
    seed: u64,
    max_days: f64,
    nodes: u32,
    payload: u32,
    period: f64,
    dwell: f64,
    n_outages: usize,
    n_waypoints: usize,
    lat: f64,
    lon: f64,
    uptime: f64,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: "prop".to_string(),
        ..ScenarioSpec::default()
    };
    if pick & 1 != 0 {
        spec.seed = Some(seed);
    }
    if pick & 2 != 0 {
        spec.max_days = Some(max_days);
    }
    spec.scheduler = match pick & 12 {
        4 => Some(SchedulerSpec::Predictive),
        8 => Some(SchedulerSpec::Vanilla { dwell_s: dwell }),
        _ => None,
    };
    if pick & 16 != 0 {
        spec.constellations = vec![ConstellationRef::Named("Tianqi".to_string())];
    }
    if pick & 32 != 0 {
        spec.nodes = Some(nodes);
        spec.traffic = Some(TrafficSpec {
            payload_bytes: payload,
            period_s: period,
        });
    }
    if pick & 64 != 0 {
        spec.weather = Some(CLIMATES[(pick as usize / 128) % CLIMATES.len()]);
    }
    // Chronological, non-overlapping outage windows.
    let mut t = period.max(1.0);
    for _ in 0..n_outages {
        let end = t + 0.5 * period.max(1.0);
        spec.outages.push(OutageWindow {
            start_s: t,
            end_s: end,
        });
        t = end + period.max(1.0);
    }
    if pick & 256 != 0 {
        spec.terrestrial = Some(satiot_scenarios::TerrestrialSpec {
            gateways: 1 + nodes,
            distances_km: vec![0.4, 1.1],
            gateway_uptime: uptime,
        });
    }
    spec.sites = if pick & 512 != 0 {
        // An inline mobile site with a monotone multi-leg track.
        let waypoints = (0..n_waypoints)
            .map(|k| Waypoint {
                t_s: k as f64 * 3_600.0,
                lat_deg: lat + k as f64 * 0.5,
                lon_deg: lon + k as f64 * 0.5,
                alt_km: if pick & 1024 != 0 {
                    0.01 * k as f64
                } else {
                    0.0
                },
            })
            .collect();
        vec![SiteRef::Inline(SiteSpec {
            code: "PROP".to_string(),
            name: "property ship".to_string(),
            lat_deg: lat,
            lon_deg: lon,
            alt_km: 0.0,
            stations: 1 + nodes,
            start_day: 0.0,
            climate: CLIMATES[(pick as usize / 2048) % CLIMATES.len()],
            track: Some(MobilityTrack { waypoints }),
        })]
    } else {
        vec![SiteRef::Named("HK".to_string())]
    };
    spec
}

proptest! {
    /// spec → JSON → spec is the identity on valid specs, the
    /// fingerprint is stable across the trip, and canonical emission is
    /// idempotent (parse(to_json(s)).to_json() == to_json(s)).
    #[test]
    fn spec_json_round_trip_identity(
        pick in 0u32..4096,
        seed in 0u64..(1u64 << 53),
        max_days in 0.05f64..30.0,
        nodes in 1u32..8,
        payload in 1u32..256,
        period in 60.0f64..7200.0,
        dwell in 1.0f64..3600.0,
        n_outages in 0usize..4,
        n_waypoints in 2usize..6,
        lat in -80.0f64..80.0,
        lon in -170.0f64..170.0,
        uptime in 0.05f64..1.0,
    ) {
        let spec = assemble(
            pick, seed, max_days, nodes, payload, period, dwell,
            n_outages, n_waypoints, lat, lon, uptime,
        );
        prop_assert!(spec.validate().is_ok(), "assembled spec must be valid");
        let json = spec.to_json();
        let parsed = ScenarioSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("canonical JSON rejected: {e}\n{json}"));
        prop_assert_eq!(&parsed, &spec, "round trip changed the spec");
        prop_assert_eq!(parsed.fingerprint(), spec.fingerprint());
        prop_assert_eq!(parsed.to_json(), json, "canonical emission not idempotent");
    }

    /// Truncating a valid spec's JSON anywhere inside the document must
    /// yield a typed error, never a panic and never a silent success.
    #[test]
    fn truncated_json_is_a_typed_error(
        pick in 0u32..4096,
        cut_frac in 0.0f64..1.0,
        n_waypoints in 2usize..6,
    ) {
        let spec = assemble(
            pick, 7, 2.0, 3, 20, 1800.0, 600.0, 2, n_waypoints, 10.0, 20.0, 0.9,
        );
        let json = spec.to_json();
        let mut cut = ((json.len() as f64) * cut_frac) as usize;
        while cut > 0 && !json.is_char_boundary(cut) {
            cut -= 1;
        }
        if cut >= json.len() {
            return;
        }
        prop_assert!(
            ScenarioSpec::from_json(&json[..cut]).is_err(),
            "truncation at byte {} parsed successfully", cut
        );
    }
}
