//! LTE backhaul delay model.
//!
//! The paper's gateways use a China Mobile LTE plan (42 Mbps). At IoT
//! data volumes the link is never throughput-limited; end-to-end delay is
//! gateway batching + LTE scheduling + Internet transit. The paper
//! measures 0.2 min (12 s) average end to end, so the backhaul model is a
//! shifted-exponential: a small fixed floor (radio + transit RTT) plus an
//! exponential batching component.

use satiot_sim::Rng;

/// Fixed delay floor: LTE attach/scheduling plus Internet transit, s.
pub const FLOOR_S: f64 = 0.8;

/// Mean of the exponential batching component, s (fitted so the overall
/// mean end-to-end terrestrial latency lands at the paper's ~12 s).
pub const BATCH_MEAN_S: f64 = 11.0;

/// Draw one gateway→server delivery delay, seconds.
pub fn delivery_delay_s(rng: &mut Rng) -> f64 {
    FLOOR_S + rng.exponential(BATCH_MEAN_S)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_about_12_seconds() {
        let mut rng = Rng::from_seed(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| delivery_delay_s(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - (FLOOR_S + BATCH_MEAN_S)).abs() < 0.2, "mean {mean}");
        // ≈ 0.2 min, the paper's terrestrial average.
        assert!((mean / 60.0 - 0.2).abs() < 0.02);
    }

    #[test]
    fn never_below_floor() {
        let mut rng = Rng::from_seed(4);
        assert!((0..10_000).all(|_| delivery_delay_s(&mut rng) >= FLOOR_S));
    }
}
