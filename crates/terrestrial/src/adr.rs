//! Adaptive Data Rate (ADR) — LoRaWAN's spreading-factor controller.
//!
//! The network server watches each node's SNR margin and walks the node
//! to the fastest spreading factor that still closes the link, reclaiming
//! airtime and energy. This is the mechanism that lets the terrestrial
//! baseline spend milliseconds on air while the DtS link — which cannot
//! run ADR against a 7.6 km/s gateway — is stuck at conservative
//! settings; it quantifies one more structural advantage the paper's
//! comparison embeds.

use satiot_phy::params::{LoRaConfig, SpreadingFactor};
use satiot_phy::sensitivity::demod_threshold_db;

/// The LoRaWAN ADR margin: required headroom above the demodulation
/// threshold before stepping the data rate up, dB.
pub const ADR_MARGIN_DB: f64 = 10.0;

/// Pick the fastest spreading factor whose demodulation threshold leaves
/// at least [`ADR_MARGIN_DB`] of headroom at `snr_db` (the highest SNR a
/// recent uplink batch achieved, per the LoRaWAN ADR algorithm). Falls
/// back to SF12 when even it has no margin.
pub fn select_sf(snr_db: f64) -> SpreadingFactor {
    for sf in SpreadingFactor::ALL {
        if snr_db - demod_threshold_db(sf) >= ADR_MARGIN_DB {
            return sf;
        }
    }
    SpreadingFactor::Sf12
}

/// A minimal network-server-side ADR state machine for one node: keeps
/// the best SNR over a sliding window of uplinks and emits the target SF.
#[derive(Debug, Clone)]
pub struct AdrController {
    window: Vec<f64>,
    capacity: usize,
}

impl AdrController {
    /// A controller with the LoRaWAN-standard 20-uplink window.
    pub fn new() -> AdrController {
        AdrController {
            window: Vec::new(),
            capacity: 20,
        }
    }

    /// Record an uplink's SNR; returns the currently recommended SF.
    pub fn observe(&mut self, snr_db: f64) -> SpreadingFactor {
        if self.window.len() == self.capacity {
            self.window.remove(0);
        }
        self.window.push(snr_db);
        self.recommendation()
    }

    /// The recommendation from the current window (SF12 before any data).
    pub fn recommendation(&self) -> SpreadingFactor {
        match self
            .window
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
        {
            best if best.is_finite() => select_sf(best),
            _ => SpreadingFactor::Sf12,
        }
    }
}

impl Default for AdrController {
    fn default() -> Self {
        Self::new()
    }
}

/// Airtime saving of running ADR against a fixed-SF12 configuration for a
/// node whose uplinks arrive at `snr_db`: `(fixed, adapted)` seconds for a
/// `payload` uplink.
pub fn airtime_saving_s(snr_db: f64, payload: usize) -> (f64, f64) {
    use satiot_phy::airtime::airtime_s;
    let fixed = LoRaConfig::terrestrial();
    let adapted = LoRaConfig {
        sf: select_sf(snr_db),
        ..fixed
    };
    (airtime_s(&fixed, payload), airtime_s(&adapted, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_links_get_fast_sf() {
        // +3 dB SNR leaves ≥10 dB over SF7's −7.5 dB threshold.
        assert_eq!(select_sf(3.0), SpreadingFactor::Sf7);
        // −4 dB: SF7 needs ≥2.5; margin 3.5 < 10 → step down to SF8 (−10):
        // margin 6 < 10 → SF9 (−12.5): margin 8.5 < 10 → SF10: 11 ≥ 10.
        assert_eq!(select_sf(-4.0), SpreadingFactor::Sf10);
        // Hopeless links stay at SF12.
        assert_eq!(select_sf(-25.0), SpreadingFactor::Sf12);
    }

    #[test]
    fn sf_is_monotone_in_snr() {
        let mut prev = SpreadingFactor::Sf12;
        for snr10 in -250..100 {
            let sf = select_sf(snr10 as f64 / 10.0);
            assert!(sf <= prev, "SF must not rise as SNR improves");
            prev = sf;
        }
    }

    #[test]
    fn controller_uses_best_of_window() {
        let mut adr = AdrController::new();
        assert_eq!(adr.recommendation(), SpreadingFactor::Sf12);
        adr.observe(-20.0);
        assert_eq!(adr.recommendation(), SpreadingFactor::Sf12);
        // One strong uplink lifts the recommendation (max over window).
        let sf = adr.observe(5.0);
        assert_eq!(sf, SpreadingFactor::Sf7);
        // The strong sample eventually ages out of the 20-slot window.
        for _ in 0..20 {
            adr.observe(-20.0);
        }
        assert_eq!(adr.recommendation(), SpreadingFactor::Sf12);
    }

    #[test]
    fn adr_saves_an_order_of_magnitude_of_airtime() {
        let (fixed, adapted) = airtime_saving_s(5.0, 33);
        assert!(fixed / adapted > 10.0, "{fixed} vs {adapted}");
        // A cell-edge node saves nothing.
        let (fixed, adapted) = airtime_saving_s(-22.0, 33);
        assert_eq!(fixed, adapted);
    }
}
