//! # satiot-terrestrial
//!
//! The terrestrial LoRaWAN baseline the paper deploys alongside the
//! satellite system (§3.2): three RAKwireless-class gateways with LTE
//! backhaul serving the same three sensors.
//!
//! * [`adr`] — the LoRaWAN Adaptive Data Rate controller (a structural
//!   advantage the DtS link cannot have against a 7.6 km/s gateway).
//! * [`backhaul`] — the LTE backhaul delay model.
//! * [`node`] — the class-A node duty cycle (sleep → standby → tx → rx
//!   windows → sleep) with energy residencies.
//! * [`campaign`] — the month-long baseline campaign producing the same
//!   record types as the satellite campaign, so every comparison figure
//!   (5a/5c/6d/10/11) analyses both systems through identical code.

// Library code must surface failures as typed errors or counted
// degradation, not ad-hoc unwraps; CI promotes this to deny.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod adr;
pub mod backhaul;
pub mod campaign;
pub mod node;

pub use campaign::{TerrestrialCampaign, TerrestrialConfig, TerrestrialResults};
