//! The class-A LoRaWAN node duty cycle and its energy residencies.
//!
//! A terrestrial node never waits for infrastructure: at each reporting
//! instant it wakes (Standby), transmits, opens its two receive windows,
//! and goes back to Sleep. The residency arithmetic here generates the
//! paper's Figure 11 (time/energy breakdown) and the terrestrial half of
//! Figure 6d (battery lifetime).

use satiot_energy::accounting::EnergyAccount;
use satiot_energy::profile::{TerrestrialMode, TerrestrialProfile};
use satiot_phy::airtime::airtime_s;
use satiot_phy::params::LoRaConfig;

/// Fixed per-cycle overheads of a class-A uplink.
#[derive(Debug, Clone, Copy)]
pub struct DutyCycleParams {
    /// MCU wake + sensor read + frame build, s (Standby).
    pub standby_s: f64,
    /// Total receive-window time (RX1 + RX2), s.
    pub rx_windows_s: f64,
}

impl Default for DutyCycleParams {
    fn default() -> Self {
        DutyCycleParams {
            standby_s: 1.5,
            rx_windows_s: 2.2,
        }
    }
}

/// LoRaWAN MAC overhead added to the application payload, bytes
/// (MHDR + DevAddr + FCtrl + FCnt + FPort + MIC).
pub const LORAWAN_OVERHEAD_BYTES: usize = 13;

/// Accumulate the energy of `cycles` reporting cycles over `horizon_s`
/// of wall time into a fresh account.
pub fn account_for(
    cfg: &LoRaConfig,
    payload_bytes: usize,
    params: &DutyCycleParams,
    cycles: u64,
    horizon_s: f64,
) -> EnergyAccount<TerrestrialMode> {
    let profile = TerrestrialProfile;
    let tx_airtime = airtime_s(cfg, payload_bytes + LORAWAN_OVERHEAD_BYTES);
    let mut acc = EnergyAccount::new();
    let active_per_cycle = params.standby_s + tx_airtime + params.rx_windows_s;
    let total_active = active_per_cycle * cycles as f64;
    acc.record(
        &profile,
        TerrestrialMode::Standby,
        params.standby_s * cycles as f64,
    );
    acc.record(&profile, TerrestrialMode::Tx, tx_airtime * cycles as f64);
    acc.record(
        &profile,
        TerrestrialMode::Rx,
        params.rx_windows_s * cycles as f64,
    );
    acc.record(
        &profile,
        TerrestrialMode::Sleep,
        (horizon_s - total_active).max(0.0),
    );
    acc
}

/// EU868-style duty-cycle compliance: the fraction of a sub-band's time a
/// device may occupy (1 %). Returns whether the reporting schedule
/// complies.
pub fn duty_cycle_compliant(cfg: &LoRaConfig, payload_bytes: usize, period_s: f64) -> bool {
    let airtime = airtime_s(cfg, payload_bytes + LORAWAN_OVERHEAD_BYTES);
    airtime / period_s <= 0.01
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_energy::profile::PowerProfile;

    #[test]
    fn sleep_dominates_time_radio_dominates_energy() {
        // The paper's Figure 11 pattern: ≥ 95 % of time in Sleep/Standby,
        // the majority of energy in Tx+Rx.
        let cfg = LoRaConfig::terrestrial();
        let cycles = 48 * 30; // One month at 48/day.
        let horizon = 30.0 * 86_400.0;
        let acc = account_for(&cfg, 20, &DutyCycleParams::default(), cycles, horizon);
        let sleepish =
            acc.time_fraction(TerrestrialMode::Sleep) + acc.time_fraction(TerrestrialMode::Standby);
        assert!(sleepish > 0.95, "sleepish {sleepish}");
        let radio_energy =
            acc.energy_fraction(TerrestrialMode::Tx) + acc.energy_fraction(TerrestrialMode::Rx);
        assert!(radio_energy > 0.02, "radio energy {radio_energy}");
        assert!((acc.total_time_s() - horizon).abs() < 1e-6);
    }

    #[test]
    fn average_power_is_sleep_dominated() {
        let cfg = LoRaConfig::terrestrial();
        let acc = account_for(
            &cfg,
            20,
            &DutyCycleParams::default(),
            48 * 30,
            30.0 * 86_400.0,
        );
        let sleep_power = TerrestrialProfile.power_mw(TerrestrialMode::Sleep);
        // Avg power is close to (slightly above) the sleep floor.
        assert!(acc.average_power_mw() > sleep_power);
        assert!(acc.average_power_mw() < sleep_power * 2.0);
    }

    #[test]
    fn thirty_minute_reporting_is_duty_cycle_compliant() {
        let cfg = LoRaConfig::terrestrial();
        assert!(duty_cycle_compliant(&cfg, 20, 1_800.0));
        // One packet a second at SF9 is not.
        assert!(!duty_cycle_compliant(&cfg, 20, 1.0));
    }

    #[test]
    fn airtime_includes_mac_overhead() {
        let cfg = LoRaConfig::terrestrial();
        let bare = airtime_s(&cfg, 20);
        let framed = airtime_s(&cfg, 20 + LORAWAN_OVERHEAD_BYTES);
        assert!(framed > bare);
    }
}
