//! The terrestrial baseline campaign.
//!
//! Three sensors report through three LoRaWAN gateways (300 m – 2 km
//! links) with LTE backhaul. Gateway diversity means a packet is lost
//! only if *every* gateway misses it, which at these link margins makes
//! the paper's ≈ 100 % end-to-end reliability emerge rather than being
//! asserted.

use crate::backhaul::delivery_delay_s;
use crate::node::{account_for, DutyCycleParams, LORAWAN_OVERHEAD_BYTES};
use satiot_channel::budget::LinkBudget;
use satiot_channel::weather::WeatherProcess;
use satiot_core::station::{AvailabilityParams, StationAvailability};
use satiot_energy::accounting::EnergyAccount;
use satiot_energy::profile::TerrestrialMode;
use satiot_measure::latency::PacketTimeline;
use satiot_measure::reliability::SentPacket;
use satiot_phy::params::LoRaConfig;
use satiot_phy::per::packet_decodes;
use satiot_sim::{Rng, SimTime};

use std::collections::HashSet;

/// Terrestrial campaign configuration (mirrors the satellite campaign's
/// knobs so comparisons sweep both sides identically).
#[derive(Debug, Clone)]
pub struct TerrestrialConfig {
    /// Root seed.
    pub seed: u64,
    /// Campaign length, days.
    pub days: f64,
    /// Sensor nodes.
    pub nodes: u32,
    /// Gateways receiving each uplink.
    pub gateways: u32,
    /// Application payload, bytes.
    pub payload_bytes: usize,
    /// Reporting period, seconds.
    pub period_s: f64,
    /// Node → gateway distances, km (per gateway; cycled if fewer than
    /// `gateways`).
    pub gateway_distance_km: Vec<f64>,
    /// Long-run gateway uptime ∈ (0, 1]; 1.0 models the paper's mains-
    /// powered, professionally sited gateways, lower values the remote
    /// solar-powered reality (`exp_extension_gateways`).
    pub gateway_uptime: f64,
}

impl Default for TerrestrialConfig {
    fn default() -> Self {
        TerrestrialConfig {
            seed: 0x7E44,
            days: 30.0,
            nodes: 3,
            gateways: 3,
            payload_bytes: 20,
            period_s: 1_800.0,
            gateway_distance_km: vec![0.4, 1.1, 2.0],
            gateway_uptime: 1.0,
        }
    }
}

/// Terrestrial campaign output (same record types as the satellite
/// campaign).
#[derive(Debug)]
pub struct TerrestrialResults {
    /// Per-packet timelines.
    pub timelines: Vec<PacketTimeline>,
    /// Sent-packet records.
    pub sent: Vec<SentPacket>,
    /// Delivered sequence IDs.
    pub delivered_seqs: HashSet<u64>,
    /// Per-node energy accounts.
    pub node_energy: Vec<EnergyAccount<TerrestrialMode>>,
    /// Campaign horizon, seconds.
    pub horizon_s: f64,
}

impl TerrestrialResults {
    /// End-to-end delivery ratio.
    pub fn reliability(&self) -> f64 {
        satiot_measure::reliability::Reliability::compute(&self.sent, &self.delivered_seqs).ratio()
    }
}

/// The terrestrial campaign driver.
pub struct TerrestrialCampaign {
    config: TerrestrialConfig,
}

impl TerrestrialCampaign {
    /// Create a campaign.
    pub fn new(config: TerrestrialConfig) -> Self {
        TerrestrialCampaign { config }
    }

    /// Run the baseline.
    pub fn run(&self) -> TerrestrialResults {
        let cfg = &self.config;
        let horizon_s = cfg.days * 86_400.0;
        let root = Rng::from_seed(cfg.seed);
        let mut rng = root.fork("events");
        let lora_cfg = LoRaConfig::terrestrial();
        let budget = LinkBudget::terrestrial(470.0);
        let phy_len = cfg.payload_bytes + LORAWAN_OVERHEAD_BYTES;

        let weather = WeatherProcess::generate(
            &satiot_channel::weather::WeatherParams::default(),
            SimTime::from_secs(horizon_s),
            &mut root.fork("weather"),
        );
        // Gateway availability timelines (always-up at uptime 1.0).
        let gateway_up: Vec<StationAvailability> = (0..cfg.gateways)
            .map(|g| {
                if cfg.gateway_uptime >= 1.0 {
                    StationAvailability::always_up()
                } else {
                    let params = AvailabilityParams::with_uptime(cfg.gateway_uptime, 12.0);
                    StationAvailability::generate(
                        &params,
                        SimTime::from_secs(horizon_s),
                        &mut root.fork_indexed("gateway", g as u64),
                    )
                }
            })
            .collect();

        let mut timelines = Vec::new();
        let mut sent = Vec::new();
        let mut delivered_seqs = HashSet::new();
        let mut seq: u64 = 0;
        let mut cycles_per_node = vec![0u64; cfg.nodes as usize];

        for node in 0..cfg.nodes {
            let mut t = node as f64 * 17.0;
            while t < horizon_s {
                let wx = weather.at(SimTime::from_secs(t));
                // Any-gateway reception: sample each gateway link.
                let mut received = false;
                for g in 0..cfg.gateways {
                    let d =
                        cfg.gateway_distance_km[g as usize % cfg.gateway_distance_km.len().max(1)];
                    let shadowing = budget.draw_shadowing_db(wx, &mut rng);
                    let s = budget.sample(d, 0.0, wx, shadowing, &mut rng);
                    let decodes = packet_decodes(&lora_cfg, phy_len, s.snr_db, &mut rng);
                    if decodes && gateway_up[g as usize].is_up(t) {
                        received = true;
                    }
                }
                let delivered_s = if received {
                    Some(t + delivery_delay_s(&mut rng))
                } else {
                    None
                };
                if delivered_s.is_some() {
                    delivered_seqs.insert(seq);
                }
                timelines.push(PacketTimeline {
                    generated_s: t,
                    first_tx_s: Some(t + 1.5), // Standby then immediate Tx.
                    sat_rx_s: delivered_s.map(|_| t + 1.7),
                    delivered_s,
                });
                sent.push(SentPacket {
                    seq,
                    node,
                    sent_s: t,
                    payload_bytes: cfg.payload_bytes,
                    attempts: 1,
                    weather: wx.label(),
                });
                seq += 1;
                cycles_per_node[node as usize] += 1;
                t += cfg.period_s;
            }
        }

        let node_energy = cycles_per_node
            .iter()
            .map(|&cycles| {
                account_for(
                    &lora_cfg,
                    cfg.payload_bytes,
                    &DutyCycleParams::default(),
                    cycles,
                    horizon_s,
                )
            })
            .collect();

        TerrestrialResults {
            timelines,
            sent,
            delivered_seqs,
            node_energy,
            horizon_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_measure::latency::LatencyBreakdown;

    fn run_days(days: f64) -> TerrestrialResults {
        TerrestrialCampaign::new(TerrestrialConfig {
            days,
            ..Default::default()
        })
        .run()
    }

    #[test]
    fn reliability_is_near_perfect() {
        let r = run_days(10.0);
        // 3 nodes × 48/day × 10 days.
        assert_eq!(r.sent.len(), 1_440);
        let rel = r.reliability();
        assert!(rel > 0.995, "terrestrial reliability {rel}");
    }

    #[test]
    fn latency_is_sub_minute() {
        let r = run_days(5.0);
        let b = LatencyBreakdown::compute(&r.timelines);
        // Paper: 0.2 min average.
        assert!(
            (0.05..1.0).contains(&b.end_to_end_min.mean),
            "e2e {} min",
            b.end_to_end_min.mean
        );
    }

    #[test]
    fn energy_residency_sums_to_horizon() {
        let r = run_days(3.0);
        for acc in &r.node_energy {
            assert!((acc.total_time_s() - r.horizon_s).abs() < 1.0);
            assert!(acc.time_fraction(TerrestrialMode::Sleep) > 0.95);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_days(2.0);
        let b = run_days(2.0);
        assert_eq!(a.delivered_seqs, b.delivered_seqs);
        assert_eq!(a.timelines.len(), b.timelines.len());
    }

    #[test]
    fn flaky_gateways_cost_reliability_and_redundancy_recovers_it() {
        let base = TerrestrialConfig {
            days: 10.0,
            gateway_uptime: 0.7,
            ..Default::default()
        };
        let mut one = base.clone();
        one.gateways = 1;
        one.gateway_distance_km = vec![0.4];
        let r1 = TerrestrialCampaign::new(one).run();
        let r3 = TerrestrialCampaign::new(base).run();
        // One 70%-uptime gateway loses ~30% of packets; three independent
        // ones lose ~3%.
        assert!(r1.reliability() < 0.85, "one gw {}", r1.reliability());
        assert!(r3.reliability() > r1.reliability() + 0.1);
        assert!(r3.reliability() > 0.9, "three gw {}", r3.reliability());
    }

    #[test]
    fn single_gateway_is_weaker_than_three() {
        let mut cfg = TerrestrialConfig {
            days: 10.0,
            ..Default::default()
        };
        let three = TerrestrialCampaign::new(cfg.clone()).run();
        cfg.gateways = 1;
        cfg.gateway_distance_km = vec![2.0];
        let one = TerrestrialCampaign::new(cfg).run();
        assert!(one.reliability() <= three.reliability());
    }
}
