//! The terrestrial baseline campaign.
//!
//! Three sensors report through three LoRaWAN gateways (300 m – 2 km
//! links) with LTE backhaul. Gateway diversity means a packet is lost
//! only if *every* gateway misses it, which at these link margins makes
//! the paper's ≈ 100 % end-to-end reliability emerge rather than being
//! asserted.

use crate::backhaul::delivery_delay_s;
use crate::node::{account_for, DutyCycleParams, LORAWAN_OVERHEAD_BYTES};
use satiot_channel::budget::LinkBudget;
use satiot_channel::weather::WeatherProcess;
use satiot_core::error::{Fault, FaultLog, SatIotError};
use satiot_core::station::{AvailabilityParams, StationAvailability};
use satiot_energy::accounting::EnergyAccount;
use satiot_energy::profile::TerrestrialMode;
use satiot_measure::latency::PacketTimeline;
use satiot_measure::reliability::SentPacket;
use satiot_phy::params::LoRaConfig;
use satiot_phy::per::packet_decodes;
use satiot_scenarios::{OutageWindow, ResolvedScenario};
use satiot_sim::{Rng, SimTime};

use std::collections::HashSet;

/// Terrestrial campaign configuration (mirrors the satellite campaign's
/// knobs so comparisons sweep both sides identically).
#[derive(Debug, Clone)]
pub struct TerrestrialConfig {
    /// Root seed.
    pub seed: u64,
    /// Campaign length, days.
    pub days: f64,
    /// Sensor nodes.
    pub nodes: u32,
    /// Gateways receiving each uplink.
    pub gateways: u32,
    /// Application payload, bytes.
    pub payload_bytes: usize,
    /// Reporting period, seconds.
    pub period_s: f64,
    /// Node → gateway distances, km (per gateway; cycled if fewer than
    /// `gateways`).
    pub gateway_distance_km: Vec<f64>,
    /// Long-run gateway uptime ∈ (0, 1]; 1.0 models the paper's mains-
    /// powered, professionally sited gateways, lower values the remote
    /// solar-powered reality (`exp_extension_gateways`).
    pub gateway_uptime: f64,
    /// Scripted outage windows (seconds since campaign start) during
    /// which the whole terrestrial path — gateways and backhaul — is
    /// down, modelling a disaster scenario (`exp_disrupted`). The gate
    /// is applied *after* every stochastic draw, so an empty list is
    /// bit-identical to the pre-outage baseline.
    pub outages: Vec<OutageWindow>,
}

impl Default for TerrestrialConfig {
    fn default() -> Self {
        TerrestrialConfig {
            seed: 0x7E44,
            days: 30.0,
            nodes: 3,
            gateways: 3,
            payload_bytes: 20,
            period_s: 1_800.0,
            gateway_distance_km: vec![0.4, 1.1, 2.0],
            gateway_uptime: 1.0,
            outages: Vec::new(),
        }
    }
}

impl TerrestrialConfig {
    /// Build a terrestrial configuration from a resolved scenario.
    /// Unset scenario fields keep the paper's Yunnan baseline defaults;
    /// the scenario's outage windows script the disrupted-comms case
    /// study.
    pub fn from_scenario(scenario: &ResolvedScenario) -> TerrestrialConfig {
        let mut cfg = TerrestrialConfig::default();
        if let Some(seed) = scenario.seed {
            cfg.seed = seed;
        }
        if let Some(days) = scenario.max_days {
            cfg.days = days;
        }
        if let Some(nodes) = scenario.nodes {
            cfg.nodes = nodes;
        }
        if let Some(traffic) = &scenario.traffic {
            cfg.payload_bytes = traffic.payload_bytes as usize;
            cfg.period_s = traffic.period_s;
        }
        if let Some(t) = &scenario.terrestrial {
            cfg.gateways = t.gateways;
            cfg.gateway_distance_km = t.distances_km.clone();
            cfg.gateway_uptime = t.gateway_uptime;
        }
        cfg.outages = scenario.outages.clone();
        cfg
    }
}

/// Terrestrial campaign output (same record types as the satellite
/// campaign).
#[derive(Debug)]
pub struct TerrestrialResults {
    /// Per-packet timelines.
    pub timelines: Vec<PacketTimeline>,
    /// Sent-packet records.
    pub sent: Vec<SentPacket>,
    /// Delivered sequence IDs.
    pub delivered_seqs: HashSet<u64>,
    /// Per-node energy accounts.
    pub node_energy: Vec<EnergyAccount<TerrestrialMode>>,
    /// Campaign horizon, seconds.
    pub horizon_s: f64,
    /// Recoverable input damage survived by clamping (out-of-domain
    /// uptimes and distances), mirrored into `core.faults.*` counters —
    /// the same accounting contract the satellite campaigns honour.
    pub faults: FaultLog,
}

impl TerrestrialResults {
    /// End-to-end delivery ratio.
    pub fn reliability(&self) -> f64 {
        satiot_measure::reliability::Reliability::compute(&self.sent, &self.delivered_seqs).ratio()
    }
}

/// The terrestrial campaign driver.
pub struct TerrestrialCampaign {
    config: TerrestrialConfig,
}

impl TerrestrialCampaign {
    /// Create a campaign.
    pub fn new(config: TerrestrialConfig) -> Self {
        TerrestrialCampaign { config }
    }

    /// Validate the configuration, returning a typed error for any
    /// field that would make the simulation meaningless or non-
    /// terminating (a zero period turns the event loop into an infinite
    /// spin; an empty distance table used to panic on index 0).
    fn validate(&self) -> Result<(), SatIotError> {
        let cfg = &self.config;
        if !cfg.days.is_finite() {
            return Err(SatIotError::NonFiniteTime {
                context: "terrestrial campaign days",
                value: cfg.days,
            });
        }
        if cfg.days <= 0.0 {
            return Err(SatIotError::InvalidConfig {
                field: "days",
                value: cfg.days,
                requirement: "a positive, finite campaign length",
            });
        }
        if !cfg.period_s.is_finite() {
            return Err(SatIotError::NonFiniteTime {
                context: "terrestrial reporting period",
                value: cfg.period_s,
            });
        }
        if cfg.period_s <= 0.0 {
            return Err(SatIotError::InvalidConfig {
                field: "period_s",
                value: cfg.period_s,
                requirement: "a positive reporting period (zero would never advance time)",
            });
        }
        if !cfg.gateway_uptime.is_finite() {
            return Err(SatIotError::InvalidConfig {
                field: "gateway_uptime",
                value: cfg.gateway_uptime,
                requirement: "a finite long-run uptime in (0, 1]",
            });
        }
        if cfg.gateway_distance_km.is_empty() {
            return Err(SatIotError::InvalidConfig {
                field: "gateway_distance_km",
                value: 0.0,
                requirement: "at least one node-to-gateway distance",
            });
        }
        if let Some(&bad) = cfg.gateway_distance_km.iter().find(|d| !d.is_finite()) {
            return Err(SatIotError::InvalidConfig {
                field: "gateway_distance_km",
                value: bad,
                requirement: "finite distances in km",
            });
        }
        for w in &cfg.outages {
            if !(w.start_s.is_finite() && w.end_s.is_finite()) {
                return Err(SatIotError::NonFiniteTime {
                    context: "terrestrial outage window",
                    value: if w.start_s.is_finite() {
                        w.end_s
                    } else {
                        w.start_s
                    },
                });
            }
            if w.end_s <= w.start_s || w.start_s < 0.0 {
                return Err(SatIotError::InvalidConfig {
                    field: "outages",
                    value: w.start_s,
                    requirement: "windows with 0 <= start_s < end_s",
                });
            }
        }
        if let Some(pair) = cfg.outages.windows(2).find(|p| p[1].start_s < p[0].end_s) {
            return Err(SatIotError::InvalidConfig {
                field: "outages",
                value: pair[1].start_s,
                requirement: "chronological, non-overlapping windows",
            });
        }
        Ok(())
    }

    /// Run the baseline.
    ///
    /// Returns a typed [`SatIotError`] for configurations the campaign
    /// cannot meaningfully simulate (see [`Self::validate`]); values
    /// that merely fall outside their domain (uptime above 1, negative
    /// distances) are clamped and counted in the result's
    /// [`FaultLog`] instead of aborting the run.
    pub fn run(&self) -> Result<TerrestrialResults, SatIotError> {
        self.validate()?;
        let cfg = &self.config;
        let mut faults = FaultLog::default();

        // Clamp out-of-domain values into range, counting each clamp —
        // the same contract the passive campaign applies to its ground-
        // station masks.
        let mut gateway_uptime = cfg.gateway_uptime;
        if !(0.0..=1.0).contains(&gateway_uptime) {
            gateway_uptime = gateway_uptime.clamp(0.0, 1.0);
            faults.record(Fault::ClampedConfig);
        }
        // A non-positive distance would drive the path-loss model to
        // −∞ dB; floor it at 50 m (antennas cannot be co-located).
        const MIN_DISTANCE_KM: f64 = 0.05;
        let gateway_distance_km: Vec<f64> = cfg
            .gateway_distance_km
            .iter()
            .map(|&d| {
                if d < MIN_DISTANCE_KM {
                    faults.record(Fault::ClampedConfig);
                    MIN_DISTANCE_KM
                } else {
                    d
                }
            })
            .collect();

        let horizon_s = cfg.days * 86_400.0;
        let root = Rng::from_seed(cfg.seed);
        let mut rng = root.fork("events");
        let lora_cfg = LoRaConfig::terrestrial();
        let budget = LinkBudget::terrestrial(470.0);
        let phy_len = cfg.payload_bytes + LORAWAN_OVERHEAD_BYTES;

        let weather = WeatherProcess::generate(
            &satiot_channel::weather::WeatherParams::default(),
            SimTime::from_secs(horizon_s),
            &mut root.fork("weather"),
        );
        // Gateway availability timelines (always-up at uptime 1.0).
        let gateway_up: Vec<StationAvailability> = (0..cfg.gateways)
            .map(|g| {
                if gateway_uptime >= 1.0 {
                    StationAvailability::always_up()
                } else {
                    let params = AvailabilityParams::with_uptime(gateway_uptime, 12.0);
                    StationAvailability::generate(
                        &params,
                        SimTime::from_secs(horizon_s),
                        &mut root.fork_indexed("gateway", g as u64),
                    )
                }
            })
            .collect();

        let mut timelines = Vec::new();
        let mut sent = Vec::new();
        let mut delivered_seqs = HashSet::new();
        let mut seq: u64 = 0;
        let mut cycles_per_node = vec![0u64; cfg.nodes as usize];

        for node in 0..cfg.nodes {
            let mut t = node as f64 * 17.0;
            while t < horizon_s {
                let wx = weather.at(SimTime::from_secs(t));
                // Scripted disaster: the backhaul is down inside an
                // outage window, so a physically received packet is
                // never delivered. The gate sits *after* every
                // stochastic draw (radio reception and the delivery
                // delay are drawn exactly as in the baseline), so an
                // empty outage list is bit-identical to the baseline
                // and packets outside the windows are untouched.
                let in_outage = cfg.outages.iter().any(|w| w.contains(t));
                // Any-gateway reception: sample each gateway link.
                let mut received = false;
                for g in 0..cfg.gateways {
                    let d = gateway_distance_km[g as usize % gateway_distance_km.len()];
                    let shadowing = budget.draw_shadowing_db(wx, &mut rng);
                    let s = budget.sample(d, 0.0, wx, shadowing, &mut rng);
                    let decodes = packet_decodes(&lora_cfg, phy_len, s.snr_db, &mut rng);
                    if decodes && gateway_up[g as usize].is_up(t) {
                        received = true;
                    }
                }
                let delay_s = if received {
                    Some(delivery_delay_s(&mut rng))
                } else {
                    None
                };
                let delivered_s = if in_outage {
                    None
                } else {
                    delay_s.map(|d| t + d)
                };
                if delivered_s.is_some() {
                    delivered_seqs.insert(seq);
                }
                timelines.push(PacketTimeline {
                    generated_s: t,
                    first_tx_s: Some(t + 1.5), // Standby then immediate Tx.
                    sat_rx_s: delivered_s.map(|_| t + 1.7),
                    delivered_s,
                });
                sent.push(SentPacket {
                    seq,
                    node,
                    sent_s: t,
                    payload_bytes: cfg.payload_bytes,
                    attempts: 1,
                    weather: wx.label(),
                });
                seq += 1;
                cycles_per_node[node as usize] += 1;
                t += cfg.period_s;
            }
        }

        let node_energy = cycles_per_node
            .iter()
            .map(|&cycles| {
                account_for(
                    &lora_cfg,
                    cfg.payload_bytes,
                    &DutyCycleParams::default(),
                    cycles,
                    horizon_s,
                )
            })
            .collect();

        Ok(TerrestrialResults {
            timelines,
            sent,
            delivered_seqs,
            node_energy,
            horizon_s,
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satiot_measure::latency::LatencyBreakdown;

    fn run_days(days: f64) -> TerrestrialResults {
        TerrestrialCampaign::new(TerrestrialConfig {
            days,
            ..Default::default()
        })
        .run()
        .expect("default config is valid")
    }

    #[test]
    fn reliability_is_near_perfect() {
        let r = run_days(10.0);
        // 3 nodes × 48/day × 10 days.
        assert_eq!(r.sent.len(), 1_440);
        let rel = r.reliability();
        assert!(rel > 0.995, "terrestrial reliability {rel}");
    }

    #[test]
    fn latency_is_sub_minute() {
        let r = run_days(5.0);
        let b = LatencyBreakdown::compute(&r.timelines);
        // Paper: 0.2 min average.
        assert!(
            (0.05..1.0).contains(&b.end_to_end_min.mean),
            "e2e {} min",
            b.end_to_end_min.mean
        );
    }

    #[test]
    fn energy_residency_sums_to_horizon() {
        let r = run_days(3.0);
        for acc in &r.node_energy {
            assert!((acc.total_time_s() - r.horizon_s).abs() < 1.0);
            assert!(acc.time_fraction(TerrestrialMode::Sleep) > 0.95);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_days(2.0);
        let b = run_days(2.0);
        assert_eq!(a.delivered_seqs, b.delivered_seqs);
        assert_eq!(a.timelines.len(), b.timelines.len());
    }

    #[test]
    fn flaky_gateways_cost_reliability_and_redundancy_recovers_it() {
        let base = TerrestrialConfig {
            days: 10.0,
            gateway_uptime: 0.7,
            ..Default::default()
        };
        let mut one = base.clone();
        one.gateways = 1;
        one.gateway_distance_km = vec![0.4];
        let r1 = TerrestrialCampaign::new(one).run().unwrap();
        let r3 = TerrestrialCampaign::new(base).run().unwrap();
        // One 70%-uptime gateway loses ~30% of packets; three independent
        // ones lose ~3%.
        assert!(r1.reliability() < 0.85, "one gw {}", r1.reliability());
        assert!(r3.reliability() > r1.reliability() + 0.1);
        assert!(r3.reliability() > 0.9, "three gw {}", r3.reliability());
    }

    #[test]
    fn single_gateway_is_weaker_than_three() {
        let mut cfg = TerrestrialConfig {
            days: 10.0,
            ..Default::default()
        };
        let three = TerrestrialCampaign::new(cfg.clone()).run().unwrap();
        cfg.gateways = 1;
        cfg.gateway_distance_km = vec![2.0];
        let one = TerrestrialCampaign::new(cfg).run().unwrap();
        assert!(one.reliability() <= three.reliability());
    }

    fn run_with(
        mutate: impl FnOnce(&mut TerrestrialConfig),
    ) -> Result<TerrestrialResults, SatIotError> {
        let mut cfg = TerrestrialConfig {
            days: 1.0,
            ..Default::default()
        };
        mutate(&mut cfg);
        TerrestrialCampaign::new(cfg).run()
    }

    #[test]
    fn empty_distance_table_is_a_typed_error_not_a_panic() {
        let err = run_with(|c| c.gateway_distance_km = Vec::new()).unwrap_err();
        match err {
            SatIotError::InvalidConfig { field, .. } => {
                assert_eq!(field, "gateway_distance_km");
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn zero_period_is_an_error_not_a_hang() {
        // `period_s = 0` used to spin `while t < horizon_s` forever;
        // this test completing at all proves the loop is never entered.
        let err = run_with(|c| c.period_s = 0.0).unwrap_err();
        match err {
            SatIotError::InvalidConfig { field, .. } => assert_eq!(field, "period_s"),
            other => panic!("expected InvalidConfig, got {other}"),
        }
        let err = run_with(|c| c.period_s = -60.0).unwrap_err();
        assert!(matches!(
            err,
            SatIotError::InvalidConfig {
                field: "period_s",
                ..
            }
        ));
    }

    #[test]
    fn non_finite_times_are_typed_errors() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = run_with(|c| c.days = bad).unwrap_err();
            assert!(
                matches!(err, SatIotError::NonFiniteTime { .. }),
                "days={bad}: {err}"
            );
            let err = run_with(|c| c.period_s = bad).unwrap_err();
            assert!(
                matches!(err, SatIotError::NonFiniteTime { .. }),
                "period={bad}: {err}"
            );
        }
        let err = run_with(|c| c.days = -3.0).unwrap_err();
        assert!(matches!(
            err,
            SatIotError::InvalidConfig { field: "days", .. }
        ));
    }

    #[test]
    fn non_finite_uptime_and_distances_are_rejected() {
        let err = run_with(|c| c.gateway_uptime = f64::NAN).unwrap_err();
        assert!(matches!(
            err,
            SatIotError::InvalidConfig {
                field: "gateway_uptime",
                ..
            }
        ));
        let err = run_with(|c| c.gateway_distance_km = vec![0.4, f64::INFINITY]).unwrap_err();
        assert!(matches!(
            err,
            SatIotError::InvalidConfig {
                field: "gateway_distance_km",
                ..
            }
        ));
    }

    #[test]
    fn excess_uptime_is_clamped_and_counted() {
        let r = run_with(|c| c.gateway_uptime = 1.7).unwrap();
        assert_eq!(r.faults.clamped_configs, 1);
        assert_eq!(r.faults.total(), 1);
        // Clamped to 1.0 → behaves exactly like the always-up default.
        let base = run_days(1.0);
        assert!(base.faults.is_clean());
        assert_eq!(r.delivered_seqs, base.delivered_seqs);
    }

    #[test]
    fn negative_distances_are_floored_and_counted() {
        let r = run_with(|c| c.gateway_distance_km = vec![-0.4, 0.0, 2.0]).unwrap();
        // Two entries below the 50 m floor.
        assert_eq!(r.faults.clamped_configs, 2);
        // The floored links still decode at near-zero range, so the run
        // produces a full packet record set.
        assert_eq!(r.sent.len(), 3 * 48);
        assert!(r.reliability() > 0.99, "reliability {}", r.reliability());
    }

    #[test]
    fn empty_outages_are_bit_identical_to_the_baseline() {
        let base = run_days(2.0);
        let gated = run_with(|c| {
            c.days = 2.0;
            c.outages = Vec::new();
        })
        .unwrap();
        assert_eq!(base.delivered_seqs, gated.delivered_seqs);
        assert_eq!(base.sent.len(), gated.sent.len());
        for (a, b) in base.timelines.iter().zip(&gated.timelines) {
            assert_eq!(
                a.delivered_s.map(f64::to_bits),
                b.delivered_s.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn scripted_outages_black_out_their_windows_and_nothing_else() {
        // Day 2 of a 3-day run is a scripted disaster.
        let window = OutageWindow {
            start_s: 86_400.0,
            end_s: 172_800.0,
        };
        let base = run_days(3.0);
        let gated = run_with(|c| {
            c.days = 3.0;
            c.outages = vec![window];
        })
        .unwrap();
        for (pkt, (a, b)) in base
            .sent
            .iter()
            .zip(base.timelines.iter().zip(&gated.timelines))
        {
            if window.contains(pkt.sent_s) {
                assert_eq!(b.delivered_s, None, "t={}", pkt.sent_s);
            } else {
                // Outside the window the gated run matches the baseline
                // bitwise — the gate never consumes RNG draws.
                assert_eq!(
                    a.delivered_s.map(f64::to_bits),
                    b.delivered_s.map(f64::to_bits),
                    "t={}",
                    pkt.sent_s
                );
            }
        }
        assert!(gated.reliability() < base.reliability());
    }

    #[test]
    fn malformed_outages_are_typed_errors() {
        let err = run_with(|c| {
            c.outages = vec![OutageWindow {
                start_s: 100.0,
                end_s: 100.0,
            }];
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SatIotError::InvalidConfig {
                field: "outages",
                ..
            }
        ));
        let err = run_with(|c| {
            c.outages = vec![
                OutageWindow {
                    start_s: 0.0,
                    end_s: 200.0,
                },
                OutageWindow {
                    start_s: 100.0,
                    end_s: 300.0,
                },
            ];
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SatIotError::InvalidConfig {
                field: "outages",
                ..
            }
        ));
        let err = run_with(|c| {
            c.outages = vec![OutageWindow {
                start_s: f64::NAN,
                end_s: 10.0,
            }];
        })
        .unwrap_err();
        assert!(matches!(err, SatIotError::NonFiniteTime { .. }));
    }

    #[test]
    fn from_scenario_maps_every_field() {
        let mut spec = satiot_scenarios::ScenarioSpec::disrupted_comms();
        spec.seed = Some(42);
        let scenario = spec.build().expect("builtin resolves");
        let cfg = TerrestrialConfig::from_scenario(&scenario);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.days, 7.0);
        assert_eq!(cfg.nodes, 3);
        assert_eq!(cfg.payload_bytes, 20);
        assert_eq!(cfg.period_s, 1_800.0);
        assert_eq!(cfg.gateways, 3);
        assert_eq!(cfg.gateway_uptime, 1.0);
        assert_eq!(cfg.outages.len(), 2);
        TerrestrialCampaign::new(cfg)
            .run()
            .expect("scenario config validates");
    }

    #[test]
    fn clamped_runs_stay_deterministic() {
        let run = || {
            run_with(|c| {
                c.gateway_uptime = -0.2;
                c.gateway_distance_km = vec![-1.0, 1.1];
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.faults, b.faults);
        assert!(a.faults.clamped_configs >= 2);
        assert_eq!(a.delivered_seqs, b.delivered_seqs);
        assert_eq!(a.sent.len(), b.sent.len());
    }
}
