//! A TinyGS operator's planning tool: predict tomorrow's passes of all
//! 39 IoT satellites over a site, pack them onto the available stations
//! with the predictive scheduler, and print the listening timetable.
//!
//! Run with: `cargo run --release --example ground_station_planner [SITE]`
//! where SITE is a Table 1 code (HK, SYD, LDN, PGH, SH, GZ, NC, YC).

use satiot::core::scheduler::{CandidatePass, PredictiveScheduler, Scheduler};
use satiot::orbit::pass::PassPredictor;
use satiot::scenarios::constellations::all_constellations;
use satiot::scenarios::sites::{campaign_epoch, measurement_sites};

fn main() {
    let code = std::env::args().nth(1).unwrap_or_else(|| "HK".into());
    let site = measurement_sites()
        .into_iter()
        .find(|s| s.code == code)
        .unwrap_or_else(|| {
            eprintln!("unknown site {code}, using HK");
            measurement_sites()
                .into_iter()
                .find(|s| s.code == "HK")
                .unwrap()
        });
    println!(
        "Pass plan for {} ({}), {} stations, one day:\n",
        site.name, site.code, site.station_count
    );

    // Flatten all four constellations and predict one day of passes.
    let start = campaign_epoch();
    let end = start + 1.0;
    let mut names: Vec<String> = Vec::new();
    let mut freqs: Vec<f64> = Vec::new();
    let mut candidates: Vec<CandidatePass> = Vec::new();
    for spec in all_constellations() {
        for sat in spec.catalog(start) {
            let predictor = PassPredictor::new(sat.sgp4().unwrap(), site.geodetic(), 0.0);
            for pass in predictor.passes(start, end) {
                candidates.push(CandidatePass {
                    sat_index: names.len(),
                    pass,
                });
            }
            names.push(format!("{}-{:02}", sat.constellation, sat.sat_id));
            freqs.push(sat.frequency_mhz);
        }
    }
    candidates.sort_by(|a, b| a.pass.aos.partial_cmp(&b.pass.aos).unwrap());
    println!(
        "{} passes predicted across {} satellites.",
        candidates.len(),
        names.len()
    );

    let coverage = PredictiveScheduler.schedule(&candidates, site.station_count);
    println!(
        "{} passes schedulable with {} stations ({} lost to conflicts):\n",
        coverage.len(),
        site.station_count,
        candidates.len() - coverage.len()
    );
    println!("station  AOS(UTC)  dur(min)  max-el  freq(MHz)  satellite");
    for c in &coverage {
        let cp = &candidates[c.pass_idx];
        let (_, _, _, h, m, _) = cp.pass.aos.to_calendar();
        println!(
            "  GS-{}   {:02}:{:02}     {:>5.1}    {:>5.1}  {:>8.3}   {}",
            c.station,
            h,
            m,
            cp.pass.duration_min(),
            cp.pass.max_elevation_rad.to_degrees(),
            freqs[cp.sat_index],
            names[cp.sat_index],
        );
    }

    let covered: f64 = coverage.iter().map(|c| c.duration_s()).sum();
    let available: f64 = candidates.iter().map(|c| c.pass.duration_s()).sum();
    println!(
        "\nCoverage: {:.1} of {:.1} pass-hours ({:.0}%).",
        covered / 3_600.0,
        available / 3_600.0,
        100.0 * covered / available
    );
    println!("This schedule is what the paper's customised scheduler computes each day (§2.2).");
}
