//! Constellation sizing tool: how many satellites does a Tianqi-class
//! operator need for a target daily service duration?
//!
//! Sweeps constellation size, predicts the theoretical daily availability
//! over a site, and applies the measured effective-to-theoretical ratio
//! (the paper's headline shrink) to estimate *usable* hours per day.
//!
//! Run with: `cargo run --release --example constellation_designer [SITE]`

use satiot::core::passive::theoretical_daily_hours;
use satiot::scenarios::constellations::{ConstellationSpec, Shell};
use satiot::scenarios::sites::measurement_sites;

fn main() {
    let code = std::env::args().nth(1).unwrap_or_else(|| "HK".into());
    let site = measurement_sites()
        .into_iter()
        .find(|s| s.code == code)
        .unwrap_or_else(|| {
            measurement_sites()
                .into_iter()
                .find(|s| s.code == "HK")
                .unwrap()
        });

    // The paper's measured effective/theoretical ratio for Tianqi-class
    // links (§3.1: daily duration shrinks ~90 %).
    let effective_ratio = 0.10;

    println!(
        "Constellation sizing for {} ({}), Tianqi-class 860 km shell @ 50°:\n",
        site.name, site.code
    );
    println!("sats  theoretical h/day  est. effective h/day  mean gap (min)");
    for count in [4u32, 8, 16, 22, 32, 48, 64] {
        let spec = ConstellationSpec {
            name: "Design",
            region: "-",
            shells: vec![Shell {
                count,
                alt_lo_km: 840.0,
                alt_hi_km: 880.0,
                inclination_deg: 49.97,
            }],
            dts_frequency_mhz: 400.45,
            beacon_interval_s: 60.0,
            tx_power_dbm: 22.0,
            walker: None,
        };
        let hours = theoretical_daily_hours(&spec, &site, 5);
        let mean = hours.iter().sum::<f64>() / hours.len().max(1) as f64;
        let effective = mean * effective_ratio;
        let gap = if mean >= 23.9 {
            0.0
        } else {
            // Mean outage gap assuming ~passes of 12 min each.
            let off_hours = 24.0 - mean;
            let contacts_per_day = (mean * 60.0 / 12.0).max(1.0);
            off_hours * 60.0 / contacts_per_day
        };
        println!("{count:>4}  {mean:>17.1}  {effective:>20.1}  {gap:>14.1}",);
    }
    println!(
        "\nThe paper's Tianqi (22 sats) delivers ~18.5 theoretical but only ~1.8\n\
         effective hours/day: scaling the constellation fixes *availability*, but\n\
         only link-layer fixes (Doppler compensation, better antennas — see the\n\
         ablations) recover the effective fraction. Note also that coverage is\n\
         not monotone in satellite count alone — plane count and phasing matter\n\
         (the catalog builder's Walker layout shows visible dips)."
    );
}
