//! Dataset archival: run a short passive campaign, persist its packet
//! traces as CSV (the paper publishes its dataset in this spirit), read
//! them back, and verify the offline re-analysis matches the live one.
//!
//! Run with: `cargo run --release --example trace_archive [days]`

use satiot::core::prelude::*;
use satiot::measure::csv::{read_traces, write_traces};
use satiot::measure::stats::Summary;
use std::fs::File;
use std::io::BufReader;

fn main() {
    let days: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);

    let mut spec = ScenarioSpec::paper_passive();
    spec.max_days = Some(days);
    spec.sites = vec![SiteRef::Named("HK".to_string())];
    let scenario = spec.build().expect("HK scenario resolves");
    let cfg = PassiveConfig::from_scenario(&scenario);
    println!("Running a {days}-day HK campaign…");
    let results = PassiveCampaign::new(cfg)
        .run(&RunOptions::from_env().apply())
        .unwrap();
    println!("Collected {} beacon traces.", results.traces.len());

    let path = std::env::temp_dir().join("satiot_traces.csv");
    write_traces(&results.traces, File::create(&path).expect("create csv")).expect("write csv");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!("Archived to {} ({} bytes).", path.display(), bytes);

    let archived =
        read_traces(BufReader::new(File::open(&path).expect("open csv"))).expect("parse csv");
    println!("Re-loaded {} traces.", archived.len());

    // Offline analysis must match the live campaign.
    let live = Summary::of(&results.traces.rssi_of("Tianqi"));
    let offline = Summary::of(&archived.rssi_of("Tianqi"));
    println!(
        "Tianqi RSSI: live mean {:.2} dBm (n={}), archived mean {:.2} dBm (n={})",
        live.mean, live.n, offline.mean, offline.n
    );
    assert_eq!(live.n, offline.n);
    assert!((live.mean - offline.mean).abs() < 0.01);
    println!("Offline re-analysis matches the live campaign. ✔");

    for c in archived.constellations() {
        let d = archived.distances_of(&c);
        let s = Summary::of(&d);
        println!(
            "  {c}: {} traces, slant range median {:.0} km (p10 {:.0}, p90 {:.0})",
            s.n, s.median, s.p10, s.p90
        );
    }
}
