//! The paper's motivating workload: a remote coffee plantation reporting
//! 20-byte sensor readings every 30 minutes — through the Tianqi
//! constellation and through a terrestrial LoRaWAN twin — and the
//! decision numbers an operator would compare.
//!
//! Run with: `cargo run --release --example farm_monitoring [days]`

use satiot::core::prelude::*;
use satiot::econ::{
    crossover_month, satellite_cost, terrestrial_cost, Deployment, SatellitePricing,
    TerrestrialPricing,
};
use satiot::energy::battery::Battery;
use satiot::energy::profile::{SatNodeDeploymentProfile, TerrestrialDeploymentProfile};
use satiot::measure::latency::LatencyBreakdown;
use satiot::terrestrial::campaign::{TerrestrialCampaign, TerrestrialConfig};

fn main() {
    let days: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7.0);
    println!("Simulating {days} days of the Yunnan farm deployment…\n");

    let sat = ActiveCampaign::new(ActiveConfig::quick(days))
        .run(&RunOptions::from_env().apply())
        .unwrap();
    let terr = TerrestrialCampaign::new(TerrestrialConfig {
        days,
        ..Default::default()
    })
    .run()
    .unwrap();

    let sb = LatencyBreakdown::compute(&sat.timelines);
    let tb = LatencyBreakdown::compute(&terr.timelines);

    println!("                         satellite (Tianqi)   terrestrial (LoRaWAN+LTE)");
    println!(
        "packets sent             {:>10}            {:>10}",
        sat.sent.len(),
        terr.sent.len()
    );
    println!(
        "delivery reliability     {:>9.1}%            {:>9.1}%",
        sat.reliability() * 100.0,
        terr.reliability() * 100.0
    );
    println!(
        "mean e2e latency         {:>7.1} min           {:>7.2} min",
        sb.end_to_end_min.mean, tb.end_to_end_min.mean
    );
    println!(
        "p90 e2e latency          {:>7.1} min           {:>7.2} min",
        sb.end_to_end_min.p90, tb.end_to_end_min.p90
    );

    let battery = Battery::paper_5ah();
    let sat_power = sat.node_energy[0]
        .re_profile(&SatNodeDeploymentProfile)
        .average_power_mw();
    let terr_power = terr.node_energy[0]
        .re_profile(&TerrestrialDeploymentProfile)
        .average_power_mw();
    println!(
        "battery life (5 Ah)      {:>7.0} days          {:>7.0} days",
        battery.lifetime_days(sat_power),
        battery.lifetime_days(terr_power)
    );

    let deployment = Deployment::paper_farm();
    let sat_cost = satellite_cost(&SatellitePricing::default(), &deployment);
    let terr_cost = terrestrial_cost(&TerrestrialPricing::default(), &deployment);
    println!(
        "upfront cost             {:>9.0} USD          {:>9.0} USD",
        sat_cost.device_usd + sat_cost.infrastructure_usd,
        terr_cost.device_usd + terr_cost.infrastructure_usd
    );
    println!(
        "monthly cost             {:>9.2} USD          {:>9.2} USD",
        sat_cost.monthly_usd, terr_cost.monthly_usd
    );
    if let Some(m) = crossover_month(&sat_cost, &terr_cost) {
        println!("\nTerrestrial total cost overtakes satellite after {m:.1} months —");
        println!("satellite IoT wins on *coverage*, not on cost (the paper's conclusion).");
    }

    println!("\nLatency decomposition of the satellite path (paper Fig 5d):");
    println!("  wait for pass      {:>6.1} min", sb.wait_min.mean);
    println!("  DtS transmissions  {:>6.1} min", sb.dts_min.mean);
    println!("  delivery           {:>6.1} min", sb.delivery_min.mean);
}
