//! Link-budget engineering tool: sweep elevation for a chosen
//! constellation/antenna/weather and print the full budget breakdown —
//! the table an RF engineer would build before deploying a DtS node.
//!
//! Run with:
//! `cargo run --example link_budget_explorer [tianqi|fossa|pico|cstp] [quarter|five8] [sunny|rainy]`

use satiot::channel::antenna::AntennaPattern;
use satiot::channel::atmosphere::{clutter_loss_db, tropo_loss_db, weather_loss_db};
use satiot::channel::budget::LinkBudget;
use satiot::channel::fspl::fspl_db;
use satiot::channel::weather::Weather;
use satiot::phy::airtime::airtime_s;
use satiot::phy::params::LoRaConfig;
use satiot::phy::per::packet_success_probability;
use satiot::scenarios::constellations::constellation_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let constellation = match args.get(1).map(|s| s.as_str()) {
        Some("fossa") => "FOSSA",
        Some("pico") => "PICO",
        Some("cstp") => "CSTP",
        _ => "Tianqi",
    };
    let antenna = match args.get(2).map(|s| s.as_str()) {
        Some("quarter") => AntennaPattern::QuarterWaveMonopole,
        _ => AntennaPattern::FiveEighthsWaveMonopole,
    };
    let weather = match args.get(3).map(|s| s.as_str()) {
        Some("rainy") => Weather::Rainy,
        Some("cloudy") => Weather::Cloudy,
        _ => Weather::Sunny,
    };

    let spec = constellation_by_name(constellation).expect("known constellation");
    let shell = &spec.shells[0];
    let alt = 0.5 * (shell.alt_lo_km + shell.alt_hi_km);
    let mut budget = LinkBudget::dts_downlink(spec.dts_frequency_mhz, antenna);
    budget.tx_power_dbm = spec.tx_power_dbm;
    let cfg = LoRaConfig::dts_beacon();
    let beacon_bytes = 30;

    println!(
        "Beacon downlink budget: {} @ {:.3} MHz, {:.0} km shell, {} antenna, {} sky",
        spec.name,
        spec.dts_frequency_mhz,
        alt,
        antenna.label(),
        weather.label()
    );
    println!(
        "TX {} dBm | beacon {} B = {:.0} ms airtime | noise floor {:.1} dBm\n",
        spec.tx_power_dbm,
        beacon_bytes,
        airtime_s(&cfg, beacon_bytes) * 1_000.0,
        budget.noise_floor_dbm()
    );
    println!("el(deg)  range(km)  FSPL(dB)  tropo  clutter  wx   RSSI(dBm)  SNR(dB)  P(decode)");
    let re = 6_378.0_f64;
    for el_deg in [0.0_f64, 3.0, 6.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 90.0] {
        let el = el_deg.to_radians();
        let range = -re * el.sin() + ((re * el.sin()).powi(2) + alt * alt + 2.0 * re * alt).sqrt();
        let rssi = budget.mean_rssi_dbm(range, el, weather);
        let snr = rssi - budget.noise_floor_dbm();
        println!(
            "{el_deg:>6.1}  {range:>9.0}  {:>8.1}  {:>5.1}  {:>7.1}  {:>3.1}  {rssi:>9.1}  {snr:>7.1}  {:>8.3}",
            fspl_db(range, spec.dts_frequency_mhz),
            tropo_loss_db(el),
            clutter_loss_db(el),
            weather_loss_db(weather),
            packet_success_probability(&cfg, beacon_bytes, snr),
        );
    }
    println!("\nBelow the local clutter line the decode probability collapses — this is the");
    println!("mechanism that shortens effective contact windows by 73.7-89.2% in the paper.");
}
