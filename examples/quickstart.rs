//! Quickstart: from a TLE to a pass prediction to a link budget in a few
//! lines — the minimal tour of the toolkit's layers.
//!
//! Run with: `cargo run --example quickstart`

use satiot::channel::antenna::AntennaPattern;
use satiot::channel::budget::LinkBudget;
use satiot::channel::weather::Weather;
use satiot::orbit::frames::Geodetic;
use satiot::orbit::pass::PassPredictor;
use satiot::orbit::sgp4::Sgp4;
use satiot::orbit::time::JulianDate;
use satiot::orbit::tle::Tle;
use satiot::phy::params::LoRaConfig;
use satiot::phy::per::packet_success_probability;
use satiot::scenarios::constellations::tianqi;
use satiot::scenarios::sites::campaign_epoch;

fn main() {
    // 1. A real TLE round-trips through the parser (the classic SGP4
    //    verification element set).
    let tle = Tle::parse_lines(
        "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    87",
        "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  1058",
    )
    .expect("valid TLE");
    let sgp4 = Sgp4::new(&tle).expect("near-earth elements");
    let state = sgp4.propagate(0.0).expect("propagates at epoch");
    println!(
        "TLE #{} at epoch: |r| = {:.1} km, |v| = {:.2} km/s",
        tle.norad_id,
        state.position_km.norm(),
        state.velocity_km_s.norm()
    );

    // 2. Predict today's Tianqi passes over Hong Kong.
    let hk = Geodetic::from_degrees(22.3193, 114.1694, 0.05);
    let start = campaign_epoch();
    let sat = &tianqi().catalog(start)[0];
    let predictor = PassPredictor::new(sat.sgp4().unwrap(), hk, 0.0);
    println!("\nFirst Tianqi satellite's passes over Hong Kong (first day):");
    for pass in predictor.passes(start, start + 1.0) {
        let (_, _, _, h, m, _) = pass.aos.to_calendar();
        println!(
            "  AOS {:02}:{:02} UTC  duration {:>5.1} min  max elevation {:>4.1} deg  range@TCA {:>6.0} km",
            h,
            m,
            pass.duration_min(),
            pass.max_elevation_rad.to_degrees(),
            pass.tca_range_km
        );
    }

    // 3. Evaluate the beacon link at culmination geometry.
    let budget = LinkBudget::dts_downlink(400.45, AntennaPattern::QuarterWaveMonopole);
    let cfg = LoRaConfig::dts_beacon();
    println!("\nBeacon link vs elevation (sunny, mean channel):");
    println!("  el(deg)  range(km)   RSSI(dBm)  SNR(dB)  P(decode)");
    for el_deg in [5.0_f64, 15.0, 25.0, 45.0, 75.0] {
        // Slant range for Tianqi's high shell via the law of cosines.
        let re = 6378.0_f64;
        let h = 857.0_f64;
        let el = el_deg.to_radians();
        let range = (-re * el.sin()) + ((re * el.sin()).powi(2) + h * h + 2.0 * re * h).sqrt();
        let rssi = budget.mean_rssi_dbm(range, el, Weather::Sunny);
        let snr = rssi - budget.noise_floor_dbm();
        let p = packet_success_probability(&cfg, 30, snr);
        println!("  {el_deg:>6.1}  {range:>9.0}  {rssi:>9.1}  {snr:>7.1}  {p:>8.3}");
    }
    println!("\nThe mid-elevation sweet spot above is why effective contact windows are");
    println!("so much shorter than the TLE-predicted ones (the paper's headline finding).");

    // 4. Absolute instants work too.
    let when = JulianDate::from_calendar(2025, 3, 15, 12, 0, 0.0);
    if let Some(la) = predictor.look_at(when) {
        println!(
            "\nAt 2025-03-15 12:00 UTC the satellite sits at elevation {:.1} deg.",
            la.elevation_rad.to_degrees()
        );
    }
}
